/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the simulator (workload generation, item
 * popularity, layout jitter) draws from an explicitly-seeded Rng so that
 * every test and benchmark run is reproducible bit-for-bit.
 *
 * The core generator is xoshiro256** (Blackman & Vigna), which is small,
 * fast, and has no measurable bias for our purposes.
 */
#ifndef NASD_UTIL_RNG_H_
#define NASD_UTIL_RNG_H_

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace nasd::util {

/** Deterministic xoshiro256** generator with distribution helpers. */
class Rng
{
  public:
    /** Seed the generator; identical seeds yield identical streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // SplitMix64 expansion of the seed into the 256-bit state, per
        // the xoshiro authors' recommendation.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        NASD_ASSERT(bound > 0);
        // Lemire-style rejection to remove modulo bias.
        std::uint64_t x = next();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        auto low = static_cast<std::uint64_t>(m);
        if (low < bound) {
            const std::uint64_t threshold = (0 - bound) % bound;
            while (low < threshold) {
                x = next();
                m = static_cast<__uint128_t>(x) * bound;
                low = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    std::uint64_t
    between(std::uint64_t lo, std::uint64_t hi)
    {
        NASD_ASSERT(lo <= hi);
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Exponentially distributed double with the given mean. */
    double
    exponential(double mean)
    {
        double u = uniform();
        // Guard against log(0).
        if (u <= 0.0)
            u = 0x1.0p-53;
        return -mean * std::log(u);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_{};
};

/**
 * Zipf-distributed integer sampler over [0, n).
 *
 * Used by the retail-transaction workload generator: item popularity in
 * sales data is heavy-tailed, which is what makes frequent-itemset
 * mining interesting. Precomputes the CDF once; sampling is a binary
 * search.
 */
class ZipfSampler
{
  public:
    /**
     * @param n Number of distinct values (ranks).
     * @param theta Skew; 0 = uniform, ~0.99 = classic Zipf.
     */
    ZipfSampler(std::size_t n, double theta) : cdf_(n)
    {
        NASD_ASSERT(n > 0);
        double sum = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
            cdf_[i] = sum;
        }
        for (auto &v : cdf_)
            v /= sum;
    }

    /** Draw a rank in [0, n); rank 0 is the most popular. */
    std::size_t
    sample(Rng &rng) const
    {
        const double u = rng.uniform();
        std::size_t lo = 0;
        std::size_t hi = cdf_.size() - 1;
        while (lo < hi) {
            const std::size_t mid = lo + (hi - lo) / 2;
            if (cdf_[mid] < u)
                lo = mid + 1;
            else
                hi = mid;
        }
        return lo;
    }

    std::size_t size() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
};

} // namespace nasd::util

#endif // NASD_UTIL_RNG_H_
