#include "util/sparse_store.h"

#include <algorithm>
#include <cstring>

#include "util/logging.h"

namespace nasd::util {

SparseStore::SparseStore(std::size_t chunk_size) : chunk_size_(chunk_size)
{
    NASD_ASSERT(chunk_size > 0 && (chunk_size & (chunk_size - 1)) == 0,
                "chunk size must be a power of two");
}

void
SparseStore::write(std::uint64_t offset, std::span<const std::uint8_t> data)
{
    std::size_t done = 0;
    while (done < data.size()) {
        const std::uint64_t pos = offset + done;
        const std::uint64_t chunk_index = pos / chunk_size_;
        const std::size_t within = pos % chunk_size_;
        const std::size_t take =
            std::min(data.size() - done, chunk_size_ - within);

        auto &chunk = chunks_[chunk_index];
        if (!chunk) {
            chunk = std::make_unique<std::uint8_t[]>(chunk_size_);
            std::memset(chunk.get(), 0, chunk_size_);
        }
        std::memcpy(chunk.get() + within, data.data() + done, take);
        done += take;
    }
}

void
SparseStore::read(std::uint64_t offset, std::span<std::uint8_t> out) const
{
    std::size_t done = 0;
    while (done < out.size()) {
        const std::uint64_t pos = offset + done;
        const std::uint64_t chunk_index = pos / chunk_size_;
        const std::size_t within = pos % chunk_size_;
        const std::size_t take =
            std::min(out.size() - done, chunk_size_ - within);

        const auto it = chunks_.find(chunk_index);
        if (it == chunks_.end()) {
            std::memset(out.data() + done, 0, take);
        } else {
            std::memcpy(out.data() + done, it->second.get() + within, take);
        }
        done += take;
    }
}

void
SparseStore::trim(std::uint64_t offset, std::uint64_t length)
{
    std::uint64_t done = 0;
    while (done < length) {
        const std::uint64_t pos = offset + done;
        const std::uint64_t chunk_index = pos / chunk_size_;
        const std::size_t within = pos % chunk_size_;
        const std::size_t take = static_cast<std::size_t>(
            std::min<std::uint64_t>(length - done, chunk_size_ - within));

        const auto it = chunks_.find(chunk_index);
        if (it != chunks_.end()) {
            if (within == 0 && take == chunk_size_) {
                chunks_.erase(it);
            } else {
                std::memset(it->second.get() + within, 0, take);
            }
        }
        done += take;
    }
}

std::size_t
SparseStore::allocatedBytes() const
{
    return chunks_.size() * chunk_size_;
}

} // namespace nasd::util
