/**
 * @file
 * Per-request latency attribution.
 *
 * An OpAttribution rides along one logical operation (a drive op, a
 * striped read) and accumulates, per resource class, how long the
 * request spent *waiting* for the resource (queued behind other
 * requests) versus being *serviced* by it (the modeled cost of the work
 * itself). Resources record into it at their acquisition sites — see
 * sim::timedAcquire() — so the per-op sum reconciles with the measured
 * end-to-end latency by construction: every co_await on the op's path
 * is classified as wait or service for exactly one resource class.
 */
#ifndef NASD_UTIL_ATTRIBUTION_H_
#define NASD_UTIL_ATTRIBUTION_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace nasd::util {

/** The resource a slice of an op's latency is charged to. */
enum class ResourceClass : std::size_t {
    kCpu = 0,      ///< a sim::CpuResource (drive or client controller)
    kDiskBus = 1,  ///< disk interface bus (controller overhead + transfer)
    kDiskMech = 2, ///< disk mechanism (seek/rotate/media, readahead waits)
    kNetTx = 3,    ///< network transmit port
    kNetRx = 4,    ///< network receive port
};

inline constexpr std::size_t kResourceClassCount = 5;

/** Short stable name for reports and metric paths ("cpu", "disk_bus", ...). */
inline const char *
resourceClassName(ResourceClass c)
{
    switch (c) {
    case ResourceClass::kCpu:
        return "cpu";
    case ResourceClass::kDiskBus:
        return "disk_bus";
    case ResourceClass::kDiskMech:
        return "disk_mech";
    case ResourceClass::kNetTx:
        return "net_tx";
    case ResourceClass::kNetRx:
        return "net_rx";
    }
    return "unknown";
}

/**
 * Wait/service nanoseconds per resource class for one operation.
 * Plumbed as an optional out-parameter (`OpAttribution *attr`) through
 * the resource layers; a null pointer means "nobody is asking".
 */
struct OpAttribution
{
    std::array<std::uint64_t, kResourceClassCount> wait_ns{};
    std::array<std::uint64_t, kResourceClassCount> service_ns{};

    void
    addWait(ResourceClass c, std::uint64_t ns)
    {
        wait_ns[static_cast<std::size_t>(c)] += ns;
    }

    void
    addService(ResourceClass c, std::uint64_t ns)
    {
        service_ns[static_cast<std::size_t>(c)] += ns;
    }

    /** Sum of all wait and service time across classes. */
    std::uint64_t
    totalNs() const
    {
        std::uint64_t total = 0;
        for (std::size_t i = 0; i < kResourceClassCount; ++i)
            total += wait_ns[i] + service_ns[i];
        return total;
    }

    /** Accumulate another attribution into this one. */
    void
    merge(const OpAttribution &other)
    {
        for (std::size_t i = 0; i < kResourceClassCount; ++i) {
            wait_ns[i] += other.wait_ns[i];
            service_ns[i] += other.service_ns[i];
        }
    }

    /**
     * Rescale so totalNs() == @p target_ns while preserving the
     * per-class proportions. Used after a parallel fan-out: the merged
     * per-member attributions sum the *work* across branches, but the
     * op only waited for the critical (slowest) branch, so the merged
     * profile is normalized down to the measured elapsed time.
     */
    void
    scaleToTotal(std::uint64_t target_ns)
    {
        const std::uint64_t total = totalNs();
        if (total == 0)
            return;
        const double scale = static_cast<double>(target_ns) /
                             static_cast<double>(total);
        std::uint64_t scaled_sum = 0;
        for (std::size_t i = 0; i < kResourceClassCount; ++i) {
            wait_ns[i] = static_cast<std::uint64_t>(
                static_cast<double>(wait_ns[i]) * scale);
            service_ns[i] = static_cast<std::uint64_t>(
                static_cast<double>(service_ns[i]) * scale);
            scaled_sum += wait_ns[i] + service_ns[i];
        }
        // Rounding slack lands on the largest service bucket so the
        // invariant totalNs() == target_ns holds exactly.
        if (scaled_sum < target_ns) {
            std::size_t largest = 0;
            for (std::size_t i = 1; i < kResourceClassCount; ++i)
                if (service_ns[i] > service_ns[largest])
                    largest = i;
            service_ns[largest] += target_ns - scaled_sum;
        }
    }
};

} // namespace nasd::util

#endif // NASD_UTIL_ATTRIBUTION_H_
