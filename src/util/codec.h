/**
 * @file
 * Little-endian byte encoding/decoding for fixed on-disk and on-wire
 * layouts (superblocks, inodes, capability fields).
 */
#ifndef NASD_UTIL_CODEC_H_
#define NASD_UTIL_CODEC_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "util/logging.h"

namespace nasd::util {

/** Appends little-endian values to a byte buffer. */
class Encoder
{
  public:
    explicit Encoder(std::vector<std::uint8_t> &out) : out_(out) {}

    template <typename T>
    void
    put(T value)
    {
        static_assert(std::is_integral_v<T>);
        for (std::size_t i = 0; i < sizeof(T); ++i)
            out_.push_back(static_cast<std::uint8_t>(
                static_cast<std::uint64_t>(value) >> (i * 8)));
    }

    void
    putBytes(std::span<const std::uint8_t> bytes)
    {
        out_.insert(out_.end(), bytes.begin(), bytes.end());
    }

    /** Zero-pad the buffer to exactly @p size bytes. */
    void
    padTo(std::size_t size)
    {
        NASD_ASSERT(out_.size() <= size, "encoded data exceeds frame");
        out_.resize(size, 0);
    }

    std::size_t size() const { return out_.size(); }

  private:
    std::vector<std::uint8_t> &out_;
};

/** Reads little-endian values from a byte buffer. */
class Decoder
{
  public:
    explicit Decoder(std::span<const std::uint8_t> in) : in_(in) {}

    template <typename T>
    T
    get()
    {
        static_assert(std::is_integral_v<T>);
        NASD_ASSERT(pos_ + sizeof(T) <= in_.size(), "decode past end");
        std::uint64_t v = 0;
        for (std::size_t i = 0; i < sizeof(T); ++i)
            v |= static_cast<std::uint64_t>(in_[pos_ + i]) << (i * 8);
        pos_ += sizeof(T);
        return static_cast<T>(v);
    }

    void
    getBytes(std::span<std::uint8_t> out)
    {
        NASD_ASSERT(pos_ + out.size() <= in_.size(), "decode past end");
        // memcpy's pointer arguments must be non-null even for n == 0,
        // and an empty span (or empty source buffer) has a null data().
        if (!out.empty())
            std::memcpy(out.data(), in_.data() + pos_, out.size());
        pos_ += out.size();
    }

    void
    skip(std::size_t n)
    {
        NASD_ASSERT(pos_ + n <= in_.size(), "skip past end");
        pos_ += n;
    }

    std::size_t position() const { return pos_; }
    std::size_t remaining() const { return in_.size() - pos_; }

  private:
    std::span<const std::uint8_t> in_;
    std::size_t pos_ = 0;
};

} // namespace nasd::util

#endif // NASD_UTIL_CODEC_H_
