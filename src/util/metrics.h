/**
 * @file
 * Hierarchical metrics registry.
 *
 * Every instrumented module registers path-named instruments (e.g.
 * "drive0/ops/read/latency_ns") in a MetricsRegistry instead of owning
 * loose Counter members. Instruments are created on first lookup and
 * pointer-stable for the life of the registry, so modules may hold
 * references across the whole run. Benches snapshot a registry with
 * toJson() to produce the machine-readable BENCH_*.json artifacts.
 *
 * Paths are '/'-separated; the prefix convention is
 * <instance>/<subsystem>/<name>, with instance names deduplicated via
 * uniquePrefix() ("drive", "drive#2", ...).
 */
#ifndef NASD_UTIL_METRICS_H_
#define NASD_UTIL_METRICS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "util/log_histogram.h"
#include "util/stats.h"

namespace nasd::util {

/** Last-value instrument for derived results (MB/s, utilization, ...). */
class Gauge
{
  public:
    void set(double value) { value_ = value; }
    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/**
 * Registry of named instruments. Lookup is create-on-first-use; asking
 * for the same path with a different instrument kind is a bug and
 * panics. std::map keeps iteration (and thus toJson()) deterministic.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** Monotonic counter at @p path (created on first use). */
    Counter &counter(const std::string &path);

    /** Last-value gauge at @p path (created on first use). */
    Gauge &gauge(const std::string &path);

    /** Latency/sample histogram at @p path (created on first use). */
    SampleStats &histogram(const std::string &path);

    /**
     * Mergeable log-bucketed latency histogram at @p path (created on
     * first use). Preferred over histogram() for per-instance latency
     * instruments: sibling instruments can be merged losslessly into
     * fleet rollups (see util::FleetRollup), which a SampleStats
     * reservoir cannot do. Keep histogram() only where tests assert
     * exact sample retention.
     */
    LogHistogram &latency(const std::string &path);

    /**
     * Reserve an instance prefix: returns @p stem the first time, then
     * "stem#2", "stem#3", ... so two drives named "drive" get disjoint
     * metric subtrees.
     */
    std::string uniquePrefix(const std::string &stem);

    /** True if @p path names an existing instrument of any kind. */
    bool contains(const std::string &path) const;

    /** Number of registered instruments. */
    std::size_t size() const { return entries_.size(); }

    /**
     * Deterministic JSON snapshot:
     * {"counters": {path: n, ...},
     *  "gauges": {path: x, ...},
     *  "histograms": {path: {count, mean, min, max, p50, p95, p99}},
     *  "latencies": {path: {count, sum, min, max, mean, p50, p95, p99,
     *                       buckets: [[lower, n], ...]}}}
     */
    std::string toJson() const;

    /**
     * Load counters, gauges, and latencies from a toJson() snapshot
     * (SampleStats histograms are summarized on export and cannot
     * round-trip samples; latencies round-trip exactly because their
     * buckets are the full state). Panics on malformed input; intended
     * for tests and offline tooling.
     */
    void importJson(std::string_view json);

    /**
     * Visit every instrument of one kind in deterministic (path) order.
     * Used by report builders (e.g. the fig9 --breakdown table) that
     * aggregate over instrument subtrees without knowing the instance
     * names up front.
     */
    void forEachCounter(
        const std::function<void(const std::string &, const Counter &)>
            &fn) const;
    void forEachGauge(
        const std::function<void(const std::string &, const Gauge &)>
            &fn) const;
    void forEachHistogram(
        const std::function<void(const std::string &, const SampleStats &)>
            &fn) const;
    void forEachLatency(
        const std::function<void(const std::string &, const LogHistogram &)>
            &fn) const;

  private:
    enum class Kind { kCounter, kGauge, kHistogram, kLatency };

    struct Entry
    {
        Kind kind;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<SampleStats> histogram;
        std::unique_ptr<LogHistogram> latency;
    };

    Entry &lookup(const std::string &path, Kind kind);

    std::map<std::string, Entry> entries_;
    std::map<std::string, std::uint64_t> prefix_counts_;
};

/**
 * Process-wide current registry. Instrumented modules resolve their
 * instruments through this accessor at construction time; benches swap
 * in a fresh registry per measurement with MetricsScope.
 */
MetricsRegistry &metrics();

/**
 * RAII: install a fresh registry as the current one, restore the
 * previous on destruction. Objects that registered instruments must
 * not outlive the scope that was current at their construction.
 */
class MetricsScope
{
  public:
    MetricsScope();
    ~MetricsScope();
    MetricsScope(const MetricsScope &) = delete;
    MetricsScope &operator=(const MetricsScope &) = delete;

    MetricsRegistry &registry() { return registry_; }

  private:
    MetricsRegistry registry_;
    MetricsRegistry *previous_;
};

} // namespace nasd::util

#endif // NASD_UTIL_METRICS_H_
