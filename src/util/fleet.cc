#include "util/fleet.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <map>
#include <sstream>

#include "util/flight_recorder.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace nasd::util {

namespace {

constexpr const char *kOpsInfix = "/ops/";
constexpr const char *kLatencySuffix = "/latency_ns";

std::string
jsonDouble(double v)
{
    if (!std::isfinite(v))
        return "0";
    std::ostringstream os;
    os.precision(17);
    os << v;
    return os.str();
}

/** Median of an unsorted vector (sorts in place; average of middle two). */
double
median(std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    const std::size_t mid = v.size() / 2;
    if (v.size() % 2 == 1)
        return v[mid];
    return (v[mid - 1] + v[mid]) / 2.0;
}

} // namespace

std::string
FleetRollup::normalizeInstance(const std::string &instance)
{
    std::string out;
    std::size_t start = 0;
    while (start <= instance.size()) {
        std::size_t end = instance.find('/', start);
        if (end == std::string::npos)
            end = instance.size();
        std::string seg = instance.substr(start, end - start);
        // Drop a uniquePrefix() "#N" dedup suffix, then trailing digits.
        const std::size_t hash = seg.rfind('#');
        if (hash != std::string::npos && hash + 1 < seg.size() &&
            std::all_of(seg.begin() + static_cast<std::ptrdiff_t>(hash) + 1,
                        seg.end(), [](unsigned char c) {
                            return std::isdigit(c) != 0;
                        })) {
            seg.erase(hash);
        }
        while (!seg.empty() &&
               std::isdigit(static_cast<unsigned char>(seg.back())) != 0) {
            seg.pop_back();
        }
        if (!out.empty())
            out += '/';
        out += seg;
        if (end == instance.size())
            break;
        start = end + 1;
    }
    return out;
}

FleetRollup
FleetRollup::collect(const MetricsRegistry &reg)
{
    // Registry iteration is path-ordered, so groups and their member
    // lists come out deterministic.
    std::map<std::string, FleetOpRollup> groups;
    reg.forEachLatency([&](const std::string &path, const LogHistogram &h) {
        const std::size_t ops = path.find(kOpsInfix);
        if (ops == std::string::npos || ops == 0)
            return;
        const std::string suffix = kLatencySuffix;
        if (path.size() < suffix.size() ||
            path.compare(path.size() - suffix.size(), suffix.size(),
                         suffix) != 0) {
            return;
        }
        const std::size_t op_start = ops + std::string(kOpsInfix).size();
        const std::size_t op_end = path.size() - suffix.size();
        if (op_end <= op_start)
            return;
        const std::string instance = path.substr(0, ops);
        const std::string op = path.substr(op_start, op_end - op_start);
        const std::string group = normalizeInstance(instance) + "/" + op;
        FleetOpRollup &roll = groups[group];
        roll.group = group;
        roll.merged.merge(h);
        FleetInstanceStat stat;
        stat.instance = instance;
        stat.count = h.count();
        stat.p50_ns = h.percentile(50);
        stat.p99_ns = h.percentile(99);
        roll.instances.push_back(std::move(stat));
    });

    FleetRollup out;
    for (auto &[group, roll] : groups) {
        std::vector<double> p99s;
        for (const FleetInstanceStat &s : roll.instances)
            if (s.count > 0)
                p99s.push_back(s.p99_ns);
        roll.median_p99_ns = median(p99s);
        std::vector<double> devs;
        devs.reserve(p99s.size());
        for (double p : p99s)
            devs.push_back(std::abs(p - roll.median_p99_ns));
        roll.mad_ns = median(devs);
        const double scale =
            std::max({1.4826 * roll.mad_ns, 0.05 * roll.median_p99_ns, 1.0});
        for (FleetInstanceStat &s : roll.instances) {
            if (s.count == 0)
                continue;
            s.score = (s.p99_ns - roll.median_p99_ns) / scale;
            s.straggler = s.score > kScoreThreshold &&
                          p99s.size() >= kMinInstances;
        }
        out.ops_.push_back(std::move(roll));
    }
    return out;
}

std::vector<const FleetInstanceStat *>
FleetRollup::stragglers() const
{
    std::vector<const FleetInstanceStat *> out;
    for (const FleetOpRollup &roll : ops_)
        for (const FleetInstanceStat &s : roll.instances)
            if (s.straggler)
                out.push_back(&s);
    return out;
}

std::string
FleetRollup::toJson() const
{
    std::ostringstream os;
    os << "{\n    \"score_threshold\": " << jsonDouble(kScoreThreshold)
       << ",\n    \"min_instances\": " << kMinInstances
       << ",\n    \"ops\": {";
    bool first_op = true;
    for (const FleetOpRollup &roll : ops_) {
        os << (first_op ? "\n" : ",\n") << "      \"" << roll.group
           << "\": {\n        \"merged\": " << roll.merged.toJson()
           << ",\n        \"median_p99_ns\": "
           << jsonDouble(roll.median_p99_ns)
           << ",\n        \"mad_ns\": " << jsonDouble(roll.mad_ns)
           << ",\n        \"instances\": {";
        bool first_inst = true;
        for (const FleetInstanceStat &s : roll.instances) {
            os << (first_inst ? "\n" : ",\n") << "          \""
               << s.instance << "\": {\"count\": " << s.count
               << ", \"p50_ns\": " << jsonDouble(s.p50_ns)
               << ", \"p99_ns\": " << jsonDouble(s.p99_ns)
               << ", \"score\": " << jsonDouble(s.score)
               << ", \"straggler\": " << (s.straggler ? "true" : "false")
               << "}";
            first_inst = false;
        }
        os << (first_inst ? "" : "\n        ") << "},\n"
           << "        \"stragglers\": [";
        bool first_straggler = true;
        for (const FleetInstanceStat &s : roll.instances) {
            if (!s.straggler)
                continue;
            os << (first_straggler ? "" : ", ") << "\"" << s.instance
               << "\"";
            first_straggler = false;
        }
        os << "]\n      }";
        first_op = false;
    }
    os << (first_op ? "" : "\n    ") << "}\n  }";
    return os.str();
}

void
FleetRollup::journalStragglers(std::uint64_t now_ns) const
{
    for (const FleetOpRollup &roll : ops_) {
        for (const FleetInstanceStat &s : roll.instances) {
            if (!s.straggler)
                continue;
            flightRecorder().node("fleet").record(
                now_ns, FrEvent::kStragglerSuspect, 0,
                static_cast<std::uint64_t>(s.score * 1000.0),
                static_cast<std::uint64_t>(s.p99_ns), s.instance);
        }
    }
}

} // namespace nasd::util
