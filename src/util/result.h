/**
 * @file
 * Minimal expected-like Result type.
 *
 * The NASD request path reports recoverable failures (bad capability,
 * nonexistent object, quota exceeded) as values, not exceptions, because
 * in the real system they travel back over the wire as RPC status codes.
 * Result<T, E> is a tiny std::expected stand-in (we target C++20).
 */
#ifndef NASD_UTIL_RESULT_H_
#define NASD_UTIL_RESULT_H_

#include <utility>
#include <variant>

#include "util/logging.h"

namespace nasd::util {

/** Wrapper to construct a Result in the error state unambiguously. */
template <typename E>
struct Err
{
    E error;
};

template <typename E>
Err(E) -> Err<E>;

/** Value-or-error sum type; @c E is typically a status enum. */
template <typename T, typename E>
class Result
{
  public:
    /** Construct the success state (implicit, like std::expected). */
    Result(T value) : data_(std::in_place_index<0>, std::move(value)) {}

    /** Construct the error state from Err{e}. */
    Result(Err<E> err) : data_(std::in_place_index<1>, std::move(err.error))
    {}

    bool ok() const { return data_.index() == 0; }
    explicit operator bool() const { return ok(); }

    /** Access the value. @pre ok(). */
    T &
    value()
    {
        NASD_ASSERT(ok(), "value() on error Result");
        return std::get<0>(data_);
    }

    const T &
    value() const
    {
        NASD_ASSERT(ok(), "value() on error Result");
        return std::get<0>(data_);
    }

    /** Access the error. @pre !ok(). */
    const E &
    error() const
    {
        NASD_ASSERT(!ok(), "error() on ok Result");
        return std::get<1>(data_);
    }

    T &operator*() { return value(); }
    const T &operator*() const { return value(); }
    T *operator->() { return &value(); }
    const T *operator->() const { return &value(); }

  private:
    std::variant<T, E> data_;
};

/** Result specialization conveying success/failure with no payload. */
template <typename E>
class Result<void, E>
{
  public:
    Result() : has_error_(false) {}
    Result(Err<E> err) : has_error_(true), error_(std::move(err.error)) {}

    bool ok() const { return !has_error_; }
    explicit operator bool() const { return ok(); }

    const E &
    error() const
    {
        NASD_ASSERT(!ok(), "error() on ok Result");
        return error_;
    }

  private:
    bool has_error_;
    E error_{};
};

} // namespace nasd::util

#endif // NASD_UTIL_RESULT_H_
