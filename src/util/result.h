/**
 * @file
 * Minimal expected-like Result type.
 *
 * The NASD request path reports recoverable failures (bad capability,
 * nonexistent object, quota exceeded) as values, not exceptions, because
 * in the real system they travel back over the wire as RPC status codes.
 * Result<T, E> is a tiny std::expected stand-in (we target C++20).
 *
 * Both Result and Err are [[nodiscard]]: a dropped status on the request
 * path is exactly the class of bug a capability-enforcing drive cannot
 * tolerate, so ignoring any status-returning call is a compile error
 * under -Werror.
 */
#ifndef NASD_UTIL_RESULT_H_
#define NASD_UTIL_RESULT_H_

#include <type_traits>
#include <utility>
#include <variant>

#include "util/logging.h"

namespace nasd::util {

template <typename T, typename E>
class Result;

/** Wrapper to construct a Result in the error state unambiguously. */
template <typename E>
struct [[nodiscard]] Err
{
    E error;
};

template <typename E>
Err(E) -> Err<E>;

/** Value-or-error sum type; @c E is typically a status enum. */
template <typename T, typename E>
class [[nodiscard]] Result
{
  public:
    /** Construct the success state (implicit, like std::expected). */
    Result(T value) : data_(std::in_place_index<0>, std::move(value)) {}

    /** Construct the error state from Err{e}. */
    Result(Err<E> err) : data_(std::in_place_index<1>, std::move(err.error))
    {}

    [[nodiscard]] bool ok() const { return data_.index() == 0; }
    explicit operator bool() const { return ok(); }

    /** Access the value. @pre ok(). */
    [[nodiscard]] T &
    value()
    {
        NASD_ASSERT(ok(), "value() on error Result");
        return std::get<0>(data_);
    }

    [[nodiscard]] const T &
    value() const
    {
        NASD_ASSERT(ok(), "value() on error Result");
        return std::get<0>(data_);
    }

    /** Access the error. @pre !ok(). */
    [[nodiscard]] const E &
    error() const
    {
        NASD_ASSERT(!ok(), "error() on ok Result");
        return std::get<1>(data_);
    }

    /** The value if ok, else @p fallback. */
    [[nodiscard]] T
    value_or(T fallback) const &
    {
        return ok() ? std::get<0>(data_) : std::move(fallback);
    }

    /** The error if failed, else @p fallback (typically the OK code). */
    [[nodiscard]] E
    error_or(E fallback) const
    {
        return ok() ? std::move(fallback) : std::get<1>(data_);
    }

    /**
     * Apply @p fn to the value, propagating errors untouched.
     * fn: T -> U yields Result<U, E> (U may be void).
     */
    template <typename F>
    [[nodiscard]] auto
    map(F &&fn) const & -> Result<std::invoke_result_t<F, const T &>, E>
    {
        using U = std::invoke_result_t<F, const T &>;
        if (!ok())
            return Err<E>{error()};
        if constexpr (std::is_void_v<U>) {
            std::forward<F>(fn)(value());
            return Result<void, E>();
        } else {
            return Result<U, E>(std::forward<F>(fn)(value()));
        }
    }

    template <typename F>
    [[nodiscard]] auto
    map(F &&fn) && -> Result<std::invoke_result_t<F, T &&>, E>
    {
        using U = std::invoke_result_t<F, T &&>;
        if (!ok())
            return Err<E>{error()};
        if constexpr (std::is_void_v<U>) {
            std::forward<F>(fn)(std::move(value()));
            return Result<void, E>();
        } else {
            return Result<U, E>(std::forward<F>(fn)(std::move(value())));
        }
    }

    /**
     * Chain a fallible step: fn: T -> Result<U, E>. Errors short-circuit.
     */
    template <typename F>
    [[nodiscard]] auto
    and_then(F &&fn) const & -> std::invoke_result_t<F, const T &>
    {
        using R = std::invoke_result_t<F, const T &>;
        if (!ok())
            return R(Err<E>{error()});
        return std::forward<F>(fn)(value());
    }

    template <typename F>
    [[nodiscard]] auto
    and_then(F &&fn) && -> std::invoke_result_t<F, T &&>
    {
        using R = std::invoke_result_t<F, T &&>;
        if (!ok())
            return R(Err<E>{error()});
        return std::forward<F>(fn)(std::move(value()));
    }

    T &operator*() { return value(); }
    const T &operator*() const { return value(); }
    T *operator->() { return &value(); }
    const T *operator->() const { return &value(); }

  private:
    std::variant<T, E> data_;
};

/** Result specialization conveying success/failure with no payload. */
template <typename E>
class [[nodiscard]] Result<void, E>
{
  public:
    Result() : has_error_(false) {}
    Result(Err<E> err) : has_error_(true), error_(std::move(err.error)) {}

    [[nodiscard]] bool ok() const { return !has_error_; }
    explicit operator bool() const { return ok(); }

    [[nodiscard]] const E &
    error() const
    {
        NASD_ASSERT(!ok(), "error() on ok Result");
        return error_;
    }

    /** The error if failed, else @p fallback (typically the OK code). */
    [[nodiscard]] E
    error_or(E fallback) const
    {
        return ok() ? std::move(fallback) : error_;
    }

    /** Apply @p fn (no arguments) on success; errors propagate. */
    template <typename F>
    [[nodiscard]] auto
    map(F &&fn) const -> Result<std::invoke_result_t<F>, E>
    {
        using U = std::invoke_result_t<F>;
        if (!ok())
            return Err<E>{error_};
        if constexpr (std::is_void_v<U>) {
            std::forward<F>(fn)();
            return Result<void, E>();
        } else {
            return Result<U, E>(std::forward<F>(fn)());
        }
    }

    /** Chain a fallible step: fn: () -> Result<U, E>. */
    template <typename F>
    [[nodiscard]] auto
    and_then(F &&fn) const -> std::invoke_result_t<F>
    {
        using R = std::invoke_result_t<F>;
        if (!ok())
            return R(Err<E>{error_});
        return std::forward<F>(fn)();
    }

  private:
    bool has_error_;
    E error_{};
};

} // namespace nasd::util

#endif // NASD_UTIL_RESULT_H_
