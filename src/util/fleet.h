/**
 * @file
 * Fleet rollups and straggler detection over the metrics registry.
 *
 * A FleetRollup walks every LogHistogram latency instrument whose path
 * follows the registry convention `<instance>/ops/<op>/latency_ns`,
 * groups siblings by (normalized instance family, op) — "nasd17" and
 * "nasd92" both normalize to "nasd", so per-drive op histograms land
 * in one group while cheops client instruments stay in their own — and
 * merges each group losslessly into a fleet aggregate. Because
 * LogHistogram::merge is exact, the fleet percentiles are identical to
 * what one histogram fed every drive's samples would report.
 *
 * Straggler detection is robust per group: the deviation score of
 * instance i is
 *
 *   score_i = (p99_i - median(p99)) / max(1.4826 * MAD, 5% of median, 1)
 *
 * i.e. distance from the median of per-instance p99s in units of the
 * median absolute deviation (the 1.4826 factor rescales MAD to sigma
 * for a normal population). The 5%-of-median floor keeps a healthy,
 * quantized-identical fleet (MAD = 0) from dividing by nothing, and
 * the 1 ns floor covers degenerate all-zero groups. An instance is
 * flagged when score > kScoreThreshold and the group has at least
 * kMinInstances members — with a 3x slow drive the score lands around
 * 40, while healthy fleets sit near 0.
 */
#ifndef NASD_UTIL_FLEET_H_
#define NASD_UTIL_FLEET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/log_histogram.h"

namespace nasd::util {

class MetricsRegistry;

/** One instance's contribution to a fleet op group. */
struct FleetInstanceStat
{
    std::string instance; ///< full instance prefix, e.g. "nasd17"
    std::uint64_t count = 0;
    double p50_ns = 0.0;
    double p99_ns = 0.0;
    double score = 0.0; ///< robust deviation of p99 from group median
    bool straggler = false;
};

/** All sibling instruments of one (family, op), merged. */
struct FleetOpRollup
{
    std::string group; ///< normalized "<family>/<op>", e.g. "nasd/read"
    LogHistogram merged;
    std::vector<FleetInstanceStat> instances; ///< ascending path order
    double median_p99_ns = 0.0;
    double mad_ns = 0.0;
};

class FleetRollup
{
  public:
    static constexpr double kScoreThreshold = 8.0;
    static constexpr std::size_t kMinInstances = 4;

    /** Build rollups from every latency instrument in @p reg. */
    static FleetRollup collect(const MetricsRegistry &reg);

    const std::vector<FleetOpRollup> &ops() const { return ops_; }

    /** Flagged instances across all groups, deterministic order. */
    std::vector<const FleetInstanceStat *> stragglers() const;

    /**
     * Deterministic JSON object for the BENCH_*.json "fleet_rollup"
     * section: per-group merged histogram, per-instance stats, and the
     * straggler list.
     */
    std::string toJson() const;

    /**
     * Record one FrEvent::kStragglerSuspect per flagged instance on
     * the ambient flight recorder's "fleet" journal (a = score in
     * milli-units, b = p99 ns, detail = instance name).
     */
    void journalStragglers(std::uint64_t now_ns) const;

    /**
     * Strip instance numbering from a metrics prefix: every path
     * segment loses a trailing "#N" dedup suffix, then trailing
     * digits ("nasd17" -> "nasd", "miner3/cheops" -> "miner/cheops").
     */
    static std::string normalizeInstance(const std::string &instance);

  private:
    std::vector<FleetOpRollup> ops_;
};

} // namespace nasd::util

#endif // NASD_UTIL_FLEET_H_
