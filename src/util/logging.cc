#include "util/logging.h"

#include <cstdio>
#include <mutex>

namespace nasd::util {

namespace {

LogLevel g_threshold = LogLevel::kWarn;
std::mutex g_log_mutex;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::kDebug:
        return "debug";
      case LogLevel::kInform:
        return "inform";
      case LogLevel::kWarn:
        return "warn";
      case LogLevel::kError:
        return "error";
    }
    return "?";
}

} // namespace

LogLevel
logThreshold()
{
    return g_threshold;
}

void
setLogThreshold(LogLevel level)
{
    g_threshold = level;
}

void
logMessage(LogLevel level, std::string_view file, int line,
           const std::string &message)
{
    if (level < g_threshold)
        return;
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::fprintf(stderr, "[%s] %.*s:%d: %s\n", levelName(level),
                 static_cast<int>(file.size()), file.data(), line,
                 message.c_str());
}

void
panicImpl(std::string_view file, int line, const std::string &message)
{
    logMessage(LogLevel::kError, file, line, "panic: " + message);
    std::abort();
}

void
fatalImpl(std::string_view file, int line, const std::string &message)
{
    logMessage(LogLevel::kError, file, line, "fatal: " + message);
    std::exit(1);
}

} // namespace nasd::util
