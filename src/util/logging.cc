#include "util/logging.h"

#include <cstdio>
#include <mutex>

namespace nasd::util {

namespace {

std::mutex g_log_mutex;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::kDebug:
        return "debug";
      case LogLevel::kInform:
        return "inform";
      case LogLevel::kWarn:
        return "warn";
      case LogLevel::kError:
        return "error";
    }
    return "?";
}

/**
 * Initial threshold: NASD_LOG_LEVEL from the environment ("debug",
 * "inform", "warn", "error", or the numeric enum value), else kWarn.
 * Lets tests and benches enable debug output without recompiling.
 */
LogLevel
initialThreshold()
{
    const char *env = std::getenv("NASD_LOG_LEVEL");
    if (!env || !*env)
        return LogLevel::kWarn;
    const std::string_view v(env);
    if (v == "debug" || v == "0")
        return LogLevel::kDebug;
    if (v == "inform" || v == "info" || v == "1")
        return LogLevel::kInform;
    if (v == "warn" || v == "2")
        return LogLevel::kWarn;
    if (v == "error" || v == "3")
        return LogLevel::kError;
    std::fprintf(stderr,
                 "[warn] NASD_LOG_LEVEL='%s' not recognized "
                 "(debug|inform|warn|error); using warn\n",
                 env);
    return LogLevel::kWarn;
}

/** Lazily initialized so static-init-order cannot race getenv(). */
LogLevel &
threshold()
{
    static LogLevel level = initialThreshold();
    return level;
}

PanicHook g_panic_hook = nullptr;
bool g_in_panic_hook = false;

/** Run the installed hook once; a hook that itself panics must not
 *  recurse into the hook again. */
void
runPanicHook()
{
    if (g_panic_hook == nullptr || g_in_panic_hook)
        return;
    g_in_panic_hook = true;
    g_panic_hook();
    g_in_panic_hook = false;
}

} // namespace

PanicHook
setPanicHook(PanicHook hook)
{
    PanicHook previous = g_panic_hook;
    g_panic_hook = hook;
    return previous;
}

LogLevel
logThreshold()
{
    return threshold();
}

void
setLogThreshold(LogLevel level)
{
    threshold() = level;
}

void
logMessage(LogLevel level, std::string_view file, int line,
           const std::string &message)
{
    if (level < threshold())
        return;
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::fprintf(stderr, "[%s] %.*s:%d: %s\n", levelName(level),
                 static_cast<int>(file.size()), file.data(), line,
                 message.c_str());
}

void
panicImpl(std::string_view file, int line, const std::string &message)
{
    logMessage(LogLevel::kError, file, line, "panic: " + message);
    runPanicHook();
    std::abort();
}

void
fatalImpl(std::string_view file, int line, const std::string &message)
{
    logMessage(LogLevel::kError, file, line, "fatal: " + message);
    runPanicHook();
    std::exit(1);
}

} // namespace nasd::util
