#include "util/trace.h"

#include <cstdio>
#include <sstream>

#include "util/logging.h"

namespace nasd::util {

namespace {

Tracer *g_tracer = nullptr;

/** Escape a span/lane name for a JSON string literal. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

TraceContext
Tracer::newRoot()
{
    return TraceContext{++next_trace_id_, ++next_span_id_};
}

TraceContext
Tracer::childOf(const TraceContext &parent)
{
    if (!parent.valid())
        return newRoot();
    return TraceContext{parent.trace_id, ++next_span_id_};
}

std::uint32_t
Tracer::laneTid(const std::string &lane)
{
    auto [it, inserted] =
        lane_tids_.try_emplace(lane, static_cast<std::uint32_t>(
                                         lane_names_.size() + 1));
    if (inserted)
        lane_names_.push_back(lane);
    return it->second;
}

std::size_t
Tracer::beginSpan(const std::string &name, const std::string &lane,
                  std::uint64_t now_ns, const TraceContext &ctx,
                  std::uint64_t parent_span)
{
    spans_.push_back(Span{name, laneTid(lane), now_ns, now_ns, ctx,
                          parent_span, {}});
    return spans_.size() - 1;
}

void
Tracer::annotateSpan(std::size_t handle, const std::string &key,
                     std::uint64_t value)
{
    NASD_ASSERT(handle < spans_.size(), "annotateSpan: bad handle ",
                handle);
    spans_[handle].args.emplace_back(key, value);
}

void
Tracer::endSpan(std::size_t handle, std::uint64_t now_ns)
{
    NASD_ASSERT(handle < spans_.size(), "endSpan: bad handle ", handle);
    Span &s = spans_[handle];
    NASD_ASSERT(now_ns >= s.begin_ns, "endSpan: time went backwards");
    s.end_ns = now_ns;
}

std::string
Tracer::toJson() const
{
    // Chrome trace_event "JSON object format": traceEvents array of
    // "X" (complete) events with ts/dur in microseconds, plus one
    // thread_name metadata record per lane.
    std::ostringstream os;
    os << "{\"traceEvents\": [\n";
    bool first = true;
    for (std::size_t tid = 1; tid <= lane_names_.size(); ++tid) {
        os << (first ? "" : ",\n")
           << "{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 1, "
              "\"tid\": "
           << tid << ", \"args\": {\"name\": \""
           << jsonEscape(lane_names_[tid - 1]) << "\"}}";
        first = false;
    }
    for (const Span &s : spans_) {
        const double ts_us = static_cast<double>(s.begin_ns) / 1000.0;
        const double dur_us =
            static_cast<double>(s.end_ns - s.begin_ns) / 1000.0;
        os << (first ? "" : ",\n") << "{\"ph\": \"X\", \"name\": \""
           << jsonEscape(s.name) << "\", \"cat\": \"nasd\", \"pid\": 1, "
           << "\"tid\": " << s.tid << ", \"ts\": " << ts_us
           << ", \"dur\": " << dur_us << ", \"args\": {\"trace_id\": "
           << s.ctx.trace_id << ", \"span_id\": " << s.ctx.span_id
           << ", \"parent_span_id\": " << s.parent_span;
        for (const auto &[key, value] : s.args)
            os << ", \"" << jsonEscape(key) << "\": " << value;
        os << "}}";
        first = false;
    }
    os << "\n], \"displayTimeUnit\": \"ns\"}\n";
    return os.str();
}

void
Tracer::writeJson(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        NASD_FATAL("cannot open trace output '", path, "'");
    const std::string body = toJson();
    if (std::fwrite(body.data(), 1, body.size(), f) != body.size()) {
        std::fclose(f);
        NASD_FATAL("short write to trace output '", path, "'");
    }
    std::fclose(f);
}

Tracer *
tracer()
{
    return g_tracer;
}

void
setTracer(Tracer *t)
{
    g_tracer = t;
}

ScopedSpan::ScopedSpan(const std::string &name, const std::string &lane,
                       std::uint64_t now_ns, const TraceContext &ctx,
                       std::uint64_t parent_span)
    : tracer_(g_tracer)
{
    if (tracer_)
        handle_ = tracer_->beginSpan(name, lane, now_ns, ctx, parent_span);
}

void
ScopedSpan::endAt(std::uint64_t now_ns)
{
    if (tracer_) {
        tracer_->endSpan(handle_, now_ns);
        tracer_ = nullptr;
    }
}

void
ScopedSpan::annotate(const std::string &key, std::uint64_t value)
{
    if (tracer_)
        tracer_->annotateSpan(handle_, key, value);
}

} // namespace nasd::util
