#include "util/critpath.h"

#include <algorithm>
#include <map>

namespace nasd::util {

FanoutReport
analyzeDriveFanout(const Tracer &tracer, const std::string &root_name,
                   const std::string &child_prefix)
{
    // Group fan-out spans by trace id. Each top-level client op mints
    // its own trace, so trace id identifies the root op without
    // needing to walk parent chains.
    struct TraceGroup
    {
        bool has_root = false;
        std::vector<const Tracer::Span *> branches;
    };
    std::map<std::uint64_t, TraceGroup> groups;
    for (const Tracer::Span &s : tracer.spans()) {
        if (s.ctx.trace_id == 0)
            continue;
        if (s.name == root_name)
            groups[s.ctx.trace_id].has_root = true;
        else if (s.name.compare(0, child_prefix.size(), child_prefix) == 0)
            groups[s.ctx.trace_id].branches.push_back(&s);
    }

    struct LaneAccum
    {
        std::uint64_t spans = 0;
        std::uint64_t critical = 0;
        std::uint64_t slack_ns = 0;
        std::uint64_t dur_ns = 0;
    };
    std::map<std::string, LaneAccum> lanes;

    FanoutReport report;
    for (const auto &[trace_id, group] : groups) {
        (void)trace_id;
        if (!group.has_root || group.branches.empty())
            continue;
        ++report.roots;
        std::uint64_t max_end = 0;
        for (const Tracer::Span *b : group.branches)
            max_end = std::max(max_end, b->end_ns);
        // First branch reaching max_end is the critical one; the rest
        // carry slack = how much earlier they finished.
        bool critical_taken = false;
        for (const Tracer::Span *b : group.branches) {
            LaneAccum &acc = lanes[tracer.laneName(b->tid)];
            ++acc.spans;
            acc.dur_ns += b->end_ns - b->begin_ns;
            if (!critical_taken && b->end_ns == max_end) {
                ++acc.critical;
                critical_taken = true;
            } else {
                acc.slack_ns += max_end - b->end_ns;
            }
        }
    }

    for (const auto &[lane, acc] : lanes) {
        DriveFanoutStats stats;
        stats.lane = lane;
        stats.spans = acc.spans;
        stats.critical = acc.critical;
        const std::uint64_t non_critical = acc.spans - acc.critical;
        stats.mean_slack_ns =
            non_critical == 0 ? 0.0
                              : static_cast<double>(acc.slack_ns) /
                                    static_cast<double>(non_critical);
        stats.mean_dur_ns = acc.spans == 0
                                ? 0.0
                                : static_cast<double>(acc.dur_ns) /
                                      static_cast<double>(acc.spans);
        report.drives.push_back(stats);
    }
    std::sort(report.drives.begin(), report.drives.end(),
              [](const DriveFanoutStats &a, const DriveFanoutStats &b) {
                  if (a.critical != b.critical)
                      return a.critical > b.critical;
                  return a.lane < b.lane;
              });
    return report;
}

} // namespace nasd::util
