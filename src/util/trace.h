/**
 * @file
 * Causal tracing: TraceContext propagation and a Chrome trace_event
 * timeline writer.
 *
 * A TraceContext (trace id + span id) is minted per top-level client
 * operation and carried through RPC request parameters, so a striped
 * Cheops read shows its per-drive fan-out as child spans of the client
 * op. Spans are stamped in simulated time; the Tracer deliberately
 * takes raw nanosecond timestamps so util does not depend on sim.
 *
 * Tracing is off unless a Tracer is installed with setTracer(); the
 * instrumented paths pay one null-pointer check when disabled. The
 * output of writeJson() loads directly into chrome://tracing or
 * https://ui.perfetto.dev.
 */
#ifndef NASD_UTIL_TRACE_H_
#define NASD_UTIL_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace nasd::util {

/** Causal identity carried along an operation's RPC chain. */
struct TraceContext
{
    std::uint64_t trace_id = 0; ///< one per top-level client op; 0 = none
    std::uint64_t span_id = 0;  ///< current span within the trace

    bool valid() const { return trace_id != 0; }
};

/**
 * Collects spans and serializes them in Chrome trace_event format.
 * Each named lane ("client0", "cheops", "drive3", ...) becomes a
 * thread row in the timeline; span args carry trace/span/parent ids so
 * causality survives into the viewer.
 */
class Tracer
{
  public:
    /** One recorded span; exposed for in-process analysis (critpath). */
    struct Span
    {
        std::string name;
        std::uint32_t tid;
        std::uint64_t begin_ns;
        std::uint64_t end_ns;
        TraceContext ctx;
        std::uint64_t parent_span;
        /** Extra numeric annotations (wait/service ns, byte counts). */
        std::vector<std::pair<std::string, std::uint64_t>> args;
    };

    /** Mint a fresh trace with its root span id. */
    TraceContext newRoot();

    /** Mint a child context: same trace, new span id. */
    TraceContext childOf(const TraceContext &parent);

    /**
     * Open a span on @p lane at simulated time @p now_ns; returns a
     * handle for endSpan(). @p parent_span is 0 for root spans.
     */
    std::size_t beginSpan(const std::string &name, const std::string &lane,
                          std::uint64_t now_ns, const TraceContext &ctx,
                          std::uint64_t parent_span = 0);

    /** Close the span @p handle at simulated time @p now_ns. */
    void endSpan(std::size_t handle, std::uint64_t now_ns);

    /**
     * Attach a numeric annotation to an open or closed span; emitted
     * into the span's JSON args. Repeated keys accumulate (last wins in
     * the viewer, all are retained in spans()).
     */
    void annotateSpan(std::size_t handle, const std::string &key,
                      std::uint64_t value);

    std::size_t spanCount() const { return spans_.size(); }

    /** All recorded spans, in begin order. */
    const std::vector<Span> &spans() const { return spans_; }

    /** Lane name for a span's tid (tids start at 1). */
    const std::string &laneName(std::uint32_t tid) const
    {
        return lane_names_[tid - 1];
    }

    /** Serialize all spans as a Chrome trace_event JSON document. */
    std::string toJson() const;

    /** Write toJson() to @p path (NASD_FATAL on I/O failure). */
    void writeJson(const std::string &path) const;

  private:
    std::uint32_t laneTid(const std::string &lane);

    std::vector<Span> spans_;
    std::map<std::string, std::uint32_t> lane_tids_;
    std::vector<std::string> lane_names_; ///< indexed by tid - 1
    std::uint64_t next_trace_id_ = 0;
    std::uint64_t next_span_id_ = 0;
};

/** Currently installed tracer, or nullptr when tracing is disabled. */
Tracer *tracer();

/** Install (or, with nullptr, remove) the process-wide tracer. */
void setTracer(Tracer *t);

/**
 * RAII span: opens on construction when tracing is enabled, closes on
 * endAt(). Safe to use unconditionally; a disabled tracer makes every
 * operation a no-op.
 */
class ScopedSpan
{
  public:
    ScopedSpan(const std::string &name, const std::string &lane,
               std::uint64_t now_ns, const TraceContext &ctx,
               std::uint64_t parent_span = 0);

    /** Close the span at simulated time @p now_ns (idempotent). */
    void endAt(std::uint64_t now_ns);

    /** Attach a numeric annotation (no-op when tracing is disabled
     *  or the span has already been closed). */
    void annotate(const std::string &key, std::uint64_t value);

  private:
    Tracer *tracer_;
    std::size_t handle_ = 0;
};

} // namespace nasd::util

#endif // NASD_UTIL_TRACE_H_
