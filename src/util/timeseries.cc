#include "util/timeseries.h"

#include <cmath>
#include <sstream>

#include "util/logging.h"

namespace nasd::util {

namespace {

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "0";
    std::ostringstream os;
    os.precision(12);
    os << v;
    return os.str();
}

} // namespace

std::size_t
TimeSeries::addSeries(const std::string &name)
{
    NASD_ASSERT(!name.empty(), "time series name must not be empty");
    for (const Column &c : columns_)
        NASD_ASSERT(c.name != name, "duplicate time series '", name, "'");
    columns_.push_back(Column{name, {}});
    return columns_.size() - 1;
}

void
TimeSeries::append(std::size_t series, double value)
{
    NASD_ASSERT(series < columns_.size(), "time series index ", series,
                " out of range");
    columns_[series].values.push_back(value);
}

std::size_t
TimeSeries::sampleCount() const
{
    std::size_t n = 0;
    for (const Column &c : columns_)
        n = std::max(n, c.values.size());
    return n;
}

std::string
TimeSeries::toJson() const
{
    std::ostringstream os;
    os << "{\"interval_ns\": " << interval_ns_
       << ", \"start_ns\": " << start_ns_
       << ", \"samples\": " << sampleCount() << ", \"series\": {";
    bool first_col = true;
    for (const Column &c : columns_) {
        os << (first_col ? "" : ", ") << "\"" << c.name << "\": [";
        bool first_val = true;
        for (double v : c.values) {
            os << (first_val ? "" : ", ") << jsonNumber(v);
            first_val = false;
        }
        os << "]";
        first_col = false;
    }
    os << "}}";
    return os.str();
}

} // namespace nasd::util
