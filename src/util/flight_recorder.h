/**
 * @file
 * Flight recorder: an always-on, bounded, deterministic journal of
 * control-plane events.
 *
 * The metrics registry answers "where did the time go" and the tracer
 * answers "what did this op fan out into"; neither records the
 * *sequence* of control-plane events — the fault injections, drive
 * crashes, version fences, rebuild row locks and degraded-mode
 * transitions whose interleaving is what actually explains a retry
 * storm or a stale-map writer. The FlightRecorder keeps one fixed-size
 * ring of trivially-copyable events per node, each stamped with a
 * globally-ordered sequence number, the simulated time, and the
 * TraceContext id of the operation it belongs to, so a journal line
 * links back to its causal trace and per-node journals merge into one
 * causally-ordered timeline (tools/flight_report.py).
 *
 * Determinism and cost contract:
 *  - timestamps are simulated time only; sequence numbers come from a
 *    per-recorder counter — two identical seeded runs produce
 *    byte-identical dumps (tools/check_determinism.sh gates this);
 *  - recording is allocation-free after a journal's ring is built:
 *    events are fixed-size PODs, the detail string is clamped into an
 *    inline buffer, and the ring never grows.
 *
 * Like the MetricsRegistry, a process-wide recorder is always
 * installed (flightRecorder()) and FlightRecorderScope swaps in a
 * fresh one for the lifetime of a bench run or test.
 */
#ifndef NASD_UTIL_FLIGHT_RECORDER_H_
#define NASD_UTIL_FLIGHT_RECORDER_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "util/trace.h"

namespace nasd::util {

/** Control-plane event taxonomy (see DESIGN.md §9). */
enum class FrEvent : std::uint8_t
{
    // RPC unreliable-path outcomes.
    kRpcTimeout,   ///< deadline fired before any reply copy
    kRpcRetry,     ///< client retry policy re-issuing an attempt
    kRpcLateReply, ///< reply landed after the caller timed out
    // Fault-plan injections.
    kFaultPlanInstalled,
    kFaultPlanCleared,
    kFaultDrop,      ///< a = payload bytes
    kFaultDuplicate, ///< a = payload bytes, b = copies
    kFaultDelay,     ///< a = payload bytes, b = delay ns
    kPartition,      ///< detail = node cut off
    kHeal,           ///< detail = node reconnected
    // Drive lifecycle.
    kDriveCrash,
    kDriveRestart,
    kDriveFailed,    ///< media failure (setFailed(true))
    kDriveRecovered, ///< setFailed(false)
    kDriveProbe,     ///< a = status code
    // Capability lifecycle.
    kCapMint,    ///< a = object id, b = expiry ns
    kCapRefresh, ///< client refreshed its map/credentials
    kCapExpired, ///< drive rejected an expired capability
    // Cheops map control.
    kVersionFence, ///< a = logical object id, b = new map_version
    kMapRefresh,   ///< a = logical object id, b = map_version seen
    // Rebuild engine.
    kRebuildStart,    ///< a = object id, b = dead component
    kRebuildComplete, ///< a = object id, b = rows done
    kRowLockAcquire,  ///< a = object id, b = ticket (0 = engine)
    kRowLockRelease,  ///< a = object id, b = ticket (0 = engine)
    // Degraded-mode transitions.
    kDegradedRead,  ///< a = object id
    kDegradedWrite, ///< a = object id, b = row
    kWriteThrough,  ///< a = object id, b = row (write to rebuild target)
    kMirrorMarkDegraded,
    kMirrorResync,
    // Bench phase markers (fig9_mining --kill-drive).
    kPhaseBegin, ///< detail = phase name
    kPhaseEnd,   ///< detail = phase name
    // Top-level client operation (pfs/cheops entry points).
    kClientOp, ///< detail = op name, a = offset, b = bytes
    // Fleet telemetry.
    kDriveSlowdown,    ///< a = mech scale in milli-units (3000 = 3.0x)
    kStragglerSuspect, ///< detail = drive, a = score milli, b = p99 ns
};

/** Stable lower_snake name of an event kind (JSON + reports). */
const char *frEventName(FrEvent e);

/** One journal line. Fixed-size and trivially copyable so the ring
 *  never allocates; detail is clamped to the inline buffer. */
struct FlightEvent
{
    static constexpr std::size_t kDetailCap = 23;

    std::uint64_t seq = 0;      ///< global order across all journals
    std::uint64_t time_ns = 0;  ///< simulated time
    std::uint64_t trace_id = 0; ///< owning trace, 0 = none
    std::uint64_t a = 0;        ///< event-specific argument
    std::uint64_t b = 0;        ///< event-specific argument
    FrEvent kind = FrEvent::kClientOp;
    char detail[kDetailCap + 1] = {}; ///< NUL-terminated short label
};

static_assert(std::is_trivially_copyable_v<FlightEvent>,
              "journal rings memcpy events; keep FlightEvent POD");

class FlightRecorder;

/** Per-node bounded ring of FlightEvents (oldest overwritten). */
class FlightJournal
{
  public:
    /** Append one event; never allocates. */
    void record(std::uint64_t time_ns, FrEvent kind,
                std::uint64_t trace_id = 0, std::uint64_t a = 0,
                std::uint64_t b = 0, std::string_view detail = {});

    const std::string &nodeName() const { return node_; }
    std::size_t capacity() const { return ring_.size(); }
    /** Events currently held (≤ capacity). */
    std::size_t size() const
    {
        if (recorded_ < ring_.size())
            return static_cast<std::size_t>(recorded_);
        return ring_.size();
    }
    /** Total events ever recorded (≥ size() once wrapped). */
    std::uint64_t recorded() const { return recorded_; }

    /** i-th retained event, oldest first (i < size()). */
    const FlightEvent &at(std::size_t i) const
    {
        const std::size_t base =
            recorded_ < ring_.size() ? 0 : next_;
        return ring_[(base + i) % ring_.size()];
    }

  private:
    friend class FlightRecorder;
    FlightJournal(FlightRecorder &owner, std::string node,
                  std::size_t capacity)
        : owner_(owner), node_(std::move(node)), ring_(capacity)
    {
    }

    FlightRecorder &owner_;
    std::string node_;
    std::vector<FlightEvent> ring_;
    std::size_t next_ = 0;      ///< ring write cursor
    std::uint64_t recorded_ = 0;
};

/** Top-K retained tail samples of one op class (deterministic: no
 *  RNG; ties broken toward the earlier sample). With K = 16, every
 *  retained sample is ≥ the exact p99 once ≥ 1600 samples arrived. */
class TailExemplars
{
  public:
    static constexpr std::size_t kKeep = 16;

    struct Exemplar
    {
        double value = 0;           ///< e.g. latency ns
        std::uint64_t trace_id = 0; ///< trace of the sampled op
        std::uint64_t seq = 0;      ///< journal cursor at record time
    };

    void add(double value, std::uint64_t trace_id, std::uint64_t seq);

    std::uint64_t count() const { return count_; }
    std::size_t retained() const { return used_; }
    /** Retained samples sorted by descending value (max first). */
    std::vector<Exemplar> sorted() const;
    /** The single largest sample (retained() > 0). */
    const Exemplar &max() const;
    /** Smallest retained value: the reservoir's tail threshold. */
    double threshold() const;

  private:
    std::array<Exemplar, kKeep> keep_{};
    std::size_t used_ = 0;
    std::uint64_t count_ = 0;
};

/**
 * Owns the per-node journals, the global sequence counter that orders
 * them, the per-op-class tail exemplars, and the deterministic trace-id
 * mint used when no Tracer is installed.
 */
class FlightRecorder
{
  public:
    static constexpr std::size_t kDefaultCapacity = 4096;

    explicit FlightRecorder(std::size_t per_node_capacity = kDefaultCapacity)
        : capacity_(per_node_capacity)
    {
    }

    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

    /**
     * Journal for @p node, created on first use. The pointer is stable
     * for the recorder's lifetime — emit sites cache it at
     * construction, like cached Counter references.
     */
    FlightJournal &node(const std::string &name);

    /** Next global sequence number (handed out by journal record()). */
    std::uint64_t nextSeq() { return ++next_seq_; }
    /** Sequence of the most recently recorded event. */
    std::uint64_t lastSeq() const { return next_seq_; }

    std::uint64_t totalRecorded() const;
    std::size_t nodeCount() const { return nodes_.size(); }

    /** Record one latency sample for @p op's tail-exemplar reservoir.
     *  Allocation-free once the op class exists (transparent lookup). */
    void recordLatency(std::string_view op, double value_ns,
                       std::uint64_t trace_id);
    /** Exemplars of @p op, or nullptr when none were recorded. */
    const TailExemplars *exemplars(std::string_view op) const;
    /** Op classes with exemplars, in deterministic (sorted) order. */
    std::vector<std::string> exemplarOps() const;

    /**
     * Deterministic trace-id mint for always-on journaling: uses the
     * installed Tracer when there is one (so journal lines share ids
     * with trace spans) and a per-recorder counter otherwise.
     */
    TraceContext mintTrace();
    /** Child context: Tracer childOf() when tracing, else the parent
     *  itself (or a fresh root when the parent is invalid). */
    TraceContext mintChild(const TraceContext &parent);

    /** All retained events merged across nodes, ordered by seq. */
    std::vector<std::pair<const FlightJournal *, const FlightEvent *>>
    merged() const;

    /** Events with seq in [center - radius, center + radius]. */
    std::vector<std::pair<const FlightJournal *, const FlightEvent *>>
    window(std::uint64_t center, std::uint64_t radius) const;

    /** Serialize every journal (and exemplars) as one JSON document. */
    std::string toJson() const;
    /** Write toJson() to @p path (NASD_FATAL on I/O failure). */
    void writeJson(const std::string &path) const;

  private:
    std::size_t capacity_;
    std::uint64_t next_seq_ = 0;
    std::uint64_t next_trace_id_ = 0;
    std::map<std::string, std::unique_ptr<FlightJournal>> nodes_;
    std::map<std::string, TailExemplars, std::less<>> exemplars_;
};

/** The currently installed recorder (never null). */
FlightRecorder &flightRecorder();

/**
 * RAII recorder swap, mirroring MetricsScope: installs a fresh
 * FlightRecorder (fresh sequence numbers, trace mints, journals and
 * exemplars) and restores the previous one on destruction, so repeated
 * bench runs in one process journal deterministically.
 */
class FlightRecorderScope
{
  public:
    explicit FlightRecorderScope(
        std::size_t per_node_capacity = FlightRecorder::kDefaultCapacity);
    ~FlightRecorderScope();

    FlightRecorderScope(const FlightRecorderScope &) = delete;
    FlightRecorderScope &operator=(const FlightRecorderScope &) = delete;

    FlightRecorder &recorder() { return recorder_; }

  private:
    FlightRecorder recorder_;
    FlightRecorder *previous_;
};

/**
 * Arm the logging panic/fatal hook so an assertion failure dumps the
 * current recorder's journals to @p path before the process dies —
 * the "black box" recovered after a seeded-fault assertion. Pass
 * nullptr to disarm.
 */
void armCrashDump(const char *path);

} // namespace nasd::util

#endif // NASD_UTIL_FLIGHT_RECORDER_H_
