/**
 * @file
 * Critical-path analysis over a Tracer's span tree.
 *
 * A striped read fans out to several drives and completes when the
 * slowest branch does: the critical path. analyzeDriveFanout() walks
 * every trace that has a root span of a given name (e.g. "pfs/read"),
 * finds its child spans matching a prefix (e.g. "drive/"), and reports
 * per drive lane how often that drive finished last (was critical) and
 * how much slack (time behind the critical branch) it had otherwise.
 * This is the in-process counterpart of tools/trace_critpath.py, which
 * runs the same analysis offline on an exported Chrome trace.
 */
#ifndef NASD_UTIL_CRITPATH_H_
#define NASD_UTIL_CRITPATH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/trace.h"

namespace nasd::util {

/** Per-drive-lane summary across all analyzed root ops. */
struct DriveFanoutStats
{
    std::string lane;           ///< drive lane name ("nasd3", ...)
    std::uint64_t spans = 0;    ///< fan-out branches landing on this lane
    std::uint64_t critical = 0; ///< times this lane finished last
    double mean_slack_ns = 0;   ///< avg time behind the critical branch
    double mean_dur_ns = 0;     ///< avg branch duration on this lane
};

struct FanoutReport
{
    std::uint64_t roots = 0; ///< root ops with at least one fan-out span
    /** Sorted by critical count descending, then lane name. */
    std::vector<DriveFanoutStats> drives;

    /** Lane that was critical most often ("" when no roots matched). */
    const std::string &dominantLane() const
    {
        static const std::string kNone;
        return drives.empty() ? kNone : drives.front().lane;
    }
};

/**
 * Analyze every trace in @p tracer whose root span is named
 * @p root_name, treating spans whose names start with @p child_prefix
 * as the fan-out branches (grouped by trace id, so indirect children
 * count too).
 */
FanoutReport analyzeDriveFanout(const Tracer &tracer,
                                const std::string &root_name,
                                const std::string &child_prefix);

} // namespace nasd::util

#endif // NASD_UTIL_CRITPATH_H_
