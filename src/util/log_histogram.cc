#include "util/log_histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "util/logging.h"

namespace nasd::util {

namespace {

/** Format a double for JSON (matches metrics.cc: finite, precision 17). */
std::string
jsonDouble(double v)
{
    if (!std::isfinite(v))
        return "0";
    std::ostringstream os;
    os.precision(17);
    os << v;
    return os.str();
}

} // namespace

std::size_t
LogHistogram::bucketIndex(std::uint64_t value)
{
    if (value < kSubBucketCount)
        return static_cast<std::size_t>(value);
    // Octave e = floor(log2(value)) >= kSubBucketBits; the top
    // kSubBucketBits bits below the leading one select the sub-bucket.
    const unsigned e = static_cast<unsigned>(std::bit_width(value)) - 1;
    const unsigned shift = e - kSubBucketBits;
    const std::uint64_t sub = (value >> shift) & (kSubBucketCount - 1);
    // Octave kSubBucketBits starts right after the 32 unit buckets.
    return static_cast<std::size_t>(
        (e - kSubBucketBits + 1) * kSubBucketCount + sub);
}

std::uint64_t
LogHistogram::bucketLowerBound(std::size_t index)
{
    if (index < kSubBucketCount)
        return static_cast<std::uint64_t>(index);
    const std::uint64_t block = index / kSubBucketCount;
    const std::uint64_t sub = index % kSubBucketCount;
    const unsigned e = static_cast<unsigned>(block) - 1 + kSubBucketBits;
    return (1ull << e) + (sub << (e - kSubBucketBits));
}

std::uint64_t
LogHistogram::bucketWidth(std::size_t index)
{
    if (index < kSubBucketCount)
        return 1;
    const std::uint64_t block = index / kSubBucketCount;
    const unsigned e = static_cast<unsigned>(block) - 1 + kSubBucketBits;
    return 1ull << (e - kSubBucketBits);
}

void
LogHistogram::record(std::uint64_t value)
{
    recordN(value, 1);
}

void
LogHistogram::recordN(std::uint64_t value, std::uint64_t n)
{
    if (n == 0)
        return;
    const std::size_t idx = bucketIndex(value);
    if (idx >= counts_.size())
        counts_.resize(idx + 1, 0);
    counts_[idx] += n;
    count_ += n;
    sum_ += value * n;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
}

void
LogHistogram::merge(const LogHistogram &other)
{
    if (other.count_ == 0)
        return;
    if (other.counts_.size() > counts_.size())
        counts_.resize(other.counts_.size(), 0);
    for (std::size_t i = 0; i < other.counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
LogHistogram::percentile(double p) const
{
    NASD_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of range: ", p);
    if (count_ == 0)
        return 0.0;
    if (p == 0.0)
        return static_cast<double>(min_);
    if (p == 100.0)
        return static_cast<double>(max_);
    const double target = p / 100.0 * static_cast<double>(count_);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (counts_[i] == 0)
            continue;
        cum += counts_[i];
        if (static_cast<double>(cum) >= target) {
            const double lo = static_cast<double>(bucketLowerBound(i));
            const double w = static_cast<double>(bucketWidth(i));
            double v = lo + (w - 1.0) / 2.0;
            v = std::min(v, static_cast<double>(max_));
            v = std::max(v, static_cast<double>(min_));
            return v;
        }
    }
    return static_cast<double>(max_);
}

void
LogHistogram::reset()
{
    counts_.clear();
    count_ = 0;
    sum_ = 0;
    min_ = ~0ull;
    max_ = 0;
}

void
LogHistogram::forEachBucket(
    const std::function<void(std::uint64_t, std::uint64_t, std::uint64_t)>
        &fn) const
{
    for (std::size_t i = 0; i < counts_.size(); ++i)
        if (counts_[i] != 0)
            fn(bucketLowerBound(i), bucketWidth(i), counts_[i]);
}

std::string
LogHistogram::toJson() const
{
    std::ostringstream os;
    os << "{\"count\": " << count_ << ", \"sum\": " << sum_
       << ", \"min\": " << min() << ", \"max\": " << max()
       << ", \"mean\": " << jsonDouble(mean())
       << ", \"p50\": " << jsonDouble(percentile(50))
       << ", \"p95\": " << jsonDouble(percentile(95))
       << ", \"p99\": " << jsonDouble(percentile(99)) << ", \"buckets\": [";
    bool first = true;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (counts_[i] == 0)
            continue;
        os << (first ? "" : ", ") << "[" << bucketLowerBound(i) << ", "
           << counts_[i] << "]";
        first = false;
    }
    os << "]}";
    return os.str();
}

void
LogHistogram::restore(
    std::uint64_t count, std::uint64_t sum, std::uint64_t min,
    std::uint64_t max,
    const std::vector<std::pair<std::uint64_t, std::uint64_t>> &buckets)
{
    reset();
    std::uint64_t bucket_total = 0;
    for (const auto &[lower, n] : buckets) {
        const std::size_t idx = bucketIndex(lower);
        NASD_ASSERT(bucketLowerBound(idx) == lower,
                    "restore: ", lower, " is not a bucket lower bound");
        if (idx >= counts_.size())
            counts_.resize(idx + 1, 0);
        counts_[idx] += n;
        bucket_total += n;
    }
    NASD_ASSERT(bucket_total == count, "restore: bucket counts sum to ",
                bucket_total, ", expected ", count);
    count_ = count;
    sum_ = sum;
    if (count > 0) {
        min_ = min;
        max_ = max;
    }
}

} // namespace nasd::util
