/**
 * @file
 * Sparse byte store.
 *
 * Backing storage for simulated disks and objects: reads of never-
 * written ranges return zeros, and memory is allocated lazily in fixed
 * chunks, so a simulated multi-gigabyte disk costs only as much RAM as
 * the data actually written to it.
 */
#ifndef NASD_UTIL_SPARSE_STORE_H_
#define NASD_UTIL_SPARSE_STORE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

namespace nasd::util {

/** Lazily-allocated, zero-default byte store addressed by offset. */
class SparseStore
{
  public:
    /** @param chunk_size Allocation granule; must be a power of two. */
    explicit SparseStore(std::size_t chunk_size = 64 * 1024);

    /** Copy @p data into the store at @p offset. */
    void write(std::uint64_t offset, std::span<const std::uint8_t> data);

    /** Copy bytes [offset, offset + out.size()) into @p out. */
    void read(std::uint64_t offset, std::span<std::uint8_t> out) const;

    /** Fill [offset, offset+length) with zeros, freeing whole chunks. */
    void trim(std::uint64_t offset, std::uint64_t length);

    /** Bytes of backing memory currently allocated. */
    std::size_t allocatedBytes() const;

  private:
    std::size_t chunk_size_;
    std::unordered_map<std::uint64_t, std::unique_ptr<std::uint8_t[]>>
        chunks_;
};

} // namespace nasd::util

#endif // NASD_UTIL_SPARSE_STORE_H_
