#include "util/units.h"

#include <cstdio>

namespace nasd::util {

std::string
formatBytes(std::uint64_t bytes)
{
    char buf[32];
    if (bytes >= kGB && bytes % kGB == 0) {
        std::snprintf(buf, sizeof(buf), "%lluGB",
                      static_cast<unsigned long long>(bytes / kGB));
    } else if (bytes >= kMB && bytes % kMB == 0) {
        std::snprintf(buf, sizeof(buf), "%lluMB",
                      static_cast<unsigned long long>(bytes / kMB));
    } else if (bytes >= kKB && bytes % kKB == 0) {
        std::snprintf(buf, sizeof(buf), "%lluKB",
                      static_cast<unsigned long long>(bytes / kKB));
    } else {
        std::snprintf(buf, sizeof(buf), "%lluB",
                      static_cast<unsigned long long>(bytes));
    }
    return buf;
}

} // namespace nasd::util
