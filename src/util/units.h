/**
 * @file
 * Byte-size and bandwidth unit helpers.
 *
 * Conventions (matching the paper's era): request and object sizes use
 * binary units (KB = 1024), while link rates quoted in Mb/s are decimal
 * (1 Mb/s = 1e6 bits/s). Bandwidth results are reported in MB/s with
 * MB = 2^20 so that figures line up with the paper's axes.
 */
#ifndef NASD_UTIL_UNITS_H_
#define NASD_UTIL_UNITS_H_

#include <cstdint>
#include <string>

namespace nasd::util {

inline constexpr std::uint64_t kKB = 1024;
inline constexpr std::uint64_t kMB = 1024 * kKB;
inline constexpr std::uint64_t kGB = 1024 * kMB;

/** Decimal megabit, used for link rates quoted in Mb/s. */
inline constexpr std::uint64_t kMbit = 1000 * 1000;

/** Convert a decimal Mb/s link rate into bytes per second. */
constexpr double
mbpsToBytesPerSec(double mbps)
{
    return mbps * 1e6 / 8.0;
}

/** Convert bytes per second into MB/s (MB = 2^20) for reporting. */
constexpr double
bytesPerSecToMBs(double bps)
{
    return bps / static_cast<double>(kMB);
}

/** Render a byte count as a short human-readable string (e.g. "512KB"). */
std::string formatBytes(std::uint64_t bytes);

} // namespace nasd::util

#endif // NASD_UTIL_UNITS_H_
