/**
 * @file
 * Mergeable log-bucketed latency histogram (HdrHistogram-style).
 *
 * SampleStats keeps a per-instance reservoir, so two instances cannot
 * be combined without re-observing the raw samples — a 256-drive run
 * emits 256 unlinked summaries and no fleet p99. LogHistogram fixes
 * that: values are binned into log-linear buckets (32 sub-buckets per
 * octave, so bucket width is at most 1/32 ≈ 3.1% of the value and the
 * reported midpoint is within ~1.6% of any sample in the bucket), and
 * a histogram is just its bucket counts. merge() adds counts
 * element-wise, which makes fleet rollups *exact*: merging N per-drive
 * histograms yields bit-identical buckets — and therefore identical
 * percentiles — to one histogram fed every sample directly.
 *
 * record() is O(1) (a bit_width + shift), memory is one lazily-grown
 * dense vector (≤ ~1.9k buckets even for 2^63 ns values), and
 * toJson() is byte-stable: same samples, same bytes, so the
 * determinism gate can diff dumps across runs.
 *
 * Values below 32 get exact unit-width buckets; count/sum/min/max are
 * always exact (integer arithmetic throughout), only percentiles are
 * quantized to bucket resolution.
 */
#ifndef NASD_UTIL_LOG_HISTOGRAM_H_
#define NASD_UTIL_LOG_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace nasd::util {

class LogHistogram
{
  public:
    /** Sub-bucket resolution: 2^5 = 32 linear sub-buckets per octave. */
    static constexpr unsigned kSubBucketBits = 5;
    static constexpr std::uint64_t kSubBucketCount = 1ull << kSubBucketBits;

    /** Record one sample (nanoseconds by convention). O(1). */
    void record(std::uint64_t value);

    /** Record @p n occurrences of @p value (rollup/import helper). */
    void recordN(std::uint64_t value, std::uint64_t n);

    /**
     * Add every bucket of @p other into this histogram. Exact: the
     * result is indistinguishable from having recorded the union of
     * both sample streams.
     */
    void merge(const LogHistogram &other);

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
    std::uint64_t max() const { return count_ == 0 ? 0 : max_; }
    double mean() const
    {
        return count_ == 0
                   ? 0.0
                   : static_cast<double>(sum_) / static_cast<double>(count_);
    }

    /**
     * Percentile in [0, 100]: midpoint of the first bucket whose
     * cumulative count reaches p% of the total, clamped to the exact
     * [min, max] envelope. p = 0 / 100 return the exact min / max.
     * Returns 0 when empty. Depends only on bucket counts, so merged
     * and directly-fed histograms agree bit-for-bit.
     */
    double percentile(double p) const;

    /** Drop all recorded samples. */
    void reset();

    /**
     * Visit every non-empty bucket in ascending value order as
     * (lower_bound, width, count). Deterministic.
     */
    void forEachBucket(
        const std::function<void(std::uint64_t lower, std::uint64_t width,
                                 std::uint64_t count)> &fn) const;

    /**
     * Byte-stable single-line JSON object:
     * {"count": N, "sum": S, "min": m, "max": M, "mean": x,
     *  "p50": x, "p95": x, "p99": x,
     *  "buckets": [[lower, count], ...]}
     * Integers stay integers; merge-then-dump equals dump-of-union.
     */
    std::string toJson() const;

    /**
     * Rebuild from exported state (importJson round-trip): @p buckets
     * are (bucket lower bound, count) pairs as emitted by toJson().
     * Panics if the bucket counts do not sum to @p count.
     */
    void restore(std::uint64_t count, std::uint64_t sum, std::uint64_t min,
                 std::uint64_t max,
                 const std::vector<std::pair<std::uint64_t, std::uint64_t>>
                     &buckets);

    /** Bucket index for @p value (exposed for tests). */
    static std::size_t bucketIndex(std::uint64_t value);

    /** Smallest value mapping to bucket @p index. */
    static std::uint64_t bucketLowerBound(std::size_t index);

    /** Number of distinct values mapping to bucket @p index. */
    static std::uint64_t bucketWidth(std::size_t index);

  private:
    std::vector<std::uint64_t> counts_; ///< dense, lazily grown
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~0ull;
    std::uint64_t max_ = 0;
};

} // namespace nasd::util

#endif // NASD_UTIL_LOG_HISTOGRAM_H_
