#include "util/stats.h"

#include <cmath>

#include "util/logging.h"

namespace nasd::util {

std::uint64_t
SampleStats::nextRandom()
{
    // splitmix64: small, fast, and deterministic across platforms.
    std::uint64_t z = (rng_state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

void
SampleStats::add(double value)
{
    ++count_;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
    if (capacity_ == 0 || samples_.size() < capacity_) {
        samples_.push_back(value);
        sorted_ = false;
        return;
    }
    // Algorithm R: keep the new sample with probability capacity/count,
    // evicting a uniformly random resident.
    const std::uint64_t slot = nextRandom() % count_;
    if (slot < capacity_) {
        samples_[slot] = value;
        sorted_ = false;
    }
}

void
SampleStats::reset()
{
    samples_.clear();
    sum_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
    sorted_ = false;
    sort_count_ = 0;
    count_ = 0;
    rng_state_ = kRngSeed;
}

double
SampleStats::stddev() const
{
    if (samples_.size() < 2)
        return 0.0;
    double acc = 0.0;
    double retained_sum = 0.0;
    for (double v : samples_)
        retained_sum += v;
    const double m = retained_sum / static_cast<double>(samples_.size());
    for (double v : samples_) {
        const double d = v - m;
        acc += d * d;
    }
    return std::sqrt(acc / static_cast<double>(samples_.size()));
}

double
SampleStats::percentile(double p) const
{
    NASD_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of range: ", p);
    if (samples_.empty())
        return 0.0;
    // A bounded reservoir may have evicted the true extremes, so at the
    // exact-full boundary (count_ == capacity_ + 1 and beyond) the
    // retained-sample quantiles drift off the envelope that min_/max_
    // track exactly. Pin the endpoints and clamp interpolated values;
    // in exact mode these are no-ops.
    if (p == 0.0)
        return min();
    if (p == 100.0)
        return max();
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
        ++sort_count_;
    }
    if (samples_.size() == 1)
        return std::clamp(samples_.front(), min(), max());
    const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    const double v = samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
    return std::clamp(v, min(), max());
}

void
UtilizationTracker::markBusy(std::uint64_t now)
{
    if (busy_)
        return;
    busy_ = true;
    busy_since_ = now;
}

void
UtilizationTracker::markIdle(std::uint64_t now)
{
    if (!busy_)
        return;
    NASD_ASSERT(now >= busy_since_);
    busy_ns_ += now - busy_since_;
    busy_ = false;
}

double
UtilizationTracker::utilization(std::uint64_t start, std::uint64_t end) const
{
    if (end <= start)
        return 0.0;
    std::uint64_t busy = busy_ns_;
    if (busy_ && end > busy_since_)
        busy += end - std::max(busy_since_, start);
    const double frac =
        static_cast<double>(busy) / static_cast<double>(end - start);
    return frac > 1.0 ? 1.0 : frac;
}

} // namespace nasd::util
