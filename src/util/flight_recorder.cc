#include "util/flight_recorder.h"

#include <algorithm>
#include <cstdio>

#include "util/logging.h"

namespace nasd::util {

namespace {

/** The always-installed default recorder (process lifetime). */
FlightRecorder &
defaultRecorder()
{
    static FlightRecorder recorder;
    return recorder;
}

FlightRecorder *g_current_recorder = nullptr;

/** Path the panic hook dumps to; static storage so the hook (a plain
 *  function pointer) can reach it. */
const char *g_crash_dump_path = nullptr;

void
crashDumpHook()
{
    if (g_crash_dump_path == nullptr)
        return;
    std::FILE *f = std::fopen(g_crash_dump_path, "w");
    if (f == nullptr)
        return; // dying anyway; do not mask the original panic
    const std::string json = flightRecorder().toJson();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    NASD_INFORM("flight recorder: dumped journal to %s", g_crash_dump_path);
}

void
appendEventJson(std::string &out, const FlightEvent &e)
{
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "{\"seq\": %llu, \"t_ns\": %llu, \"trace\": %llu, "
                  "\"kind\": \"%s\", \"a\": %llu, \"b\": %llu",
                  static_cast<unsigned long long>(e.seq),
                  static_cast<unsigned long long>(e.time_ns),
                  static_cast<unsigned long long>(e.trace_id),
                  frEventName(e.kind),
                  static_cast<unsigned long long>(e.a),
                  static_cast<unsigned long long>(e.b));
    out += buf;
    if (e.detail[0] != '\0') {
        out += ", \"detail\": \"";
        out += e.detail; // clamped ASCII labels; nothing to escape
        out += '"';
    }
    out += '}';
}

} // namespace

const char *
frEventName(FrEvent e)
{
    switch (e) {
      case FrEvent::kRpcTimeout:         return "rpc_timeout";
      case FrEvent::kRpcRetry:           return "rpc_retry";
      case FrEvent::kRpcLateReply:       return "rpc_late_reply";
      case FrEvent::kFaultPlanInstalled: return "fault_plan_installed";
      case FrEvent::kFaultPlanCleared:   return "fault_plan_cleared";
      case FrEvent::kFaultDrop:          return "fault_drop";
      case FrEvent::kFaultDuplicate:     return "fault_duplicate";
      case FrEvent::kFaultDelay:         return "fault_delay";
      case FrEvent::kPartition:          return "partition";
      case FrEvent::kHeal:               return "heal";
      case FrEvent::kDriveCrash:         return "drive_crash";
      case FrEvent::kDriveRestart:       return "drive_restart";
      case FrEvent::kDriveFailed:        return "drive_failed";
      case FrEvent::kDriveRecovered:     return "drive_recovered";
      case FrEvent::kDriveProbe:         return "drive_probe";
      case FrEvent::kCapMint:            return "cap_mint";
      case FrEvent::kCapRefresh:         return "cap_refresh";
      case FrEvent::kCapExpired:         return "cap_expired";
      case FrEvent::kVersionFence:       return "version_fence";
      case FrEvent::kMapRefresh:         return "map_refresh";
      case FrEvent::kRebuildStart:       return "rebuild_start";
      case FrEvent::kRebuildComplete:    return "rebuild_complete";
      case FrEvent::kRowLockAcquire:     return "row_lock_acquire";
      case FrEvent::kRowLockRelease:     return "row_lock_release";
      case FrEvent::kDegradedRead:       return "degraded_read";
      case FrEvent::kDegradedWrite:      return "degraded_write";
      case FrEvent::kWriteThrough:       return "write_through";
      case FrEvent::kMirrorMarkDegraded: return "mirror_mark_degraded";
      case FrEvent::kMirrorResync:       return "mirror_resync";
      case FrEvent::kPhaseBegin:         return "phase_begin";
      case FrEvent::kPhaseEnd:           return "phase_end";
      case FrEvent::kClientOp:           return "client_op";
      case FrEvent::kDriveSlowdown:      return "drive_slowdown";
      case FrEvent::kStragglerSuspect:   return "straggler_suspect";
    }
    return "?";
}

void
FlightJournal::record(std::uint64_t time_ns, FrEvent kind,
                      std::uint64_t trace_id, std::uint64_t a,
                      std::uint64_t b, std::string_view detail)
{
    FlightEvent &e = ring_[next_];
    e.seq = owner_.nextSeq();
    e.time_ns = time_ns;
    e.trace_id = trace_id;
    e.a = a;
    e.b = b;
    e.kind = kind;
    const std::size_t n = std::min(detail.size(), FlightEvent::kDetailCap);
    std::memcpy(e.detail, detail.data() == nullptr ? "" : detail.data(), n);
    e.detail[n] = '\0';
    next_ = (next_ + 1) % ring_.size();
    ++recorded_;
}

void
TailExemplars::add(double value, std::uint64_t trace_id, std::uint64_t seq)
{
    ++count_;
    if (used_ < kKeep) {
        keep_[used_++] = Exemplar{value, trace_id, seq};
        return;
    }
    // Replace the smallest retained sample, but only on a strict
    // improvement: ties keep the earlier sample (deterministic).
    std::size_t min_i = 0;
    for (std::size_t i = 1; i < kKeep; ++i) {
        if (keep_[i].value < keep_[min_i].value ||
            (keep_[i].value == keep_[min_i].value &&
             keep_[i].seq < keep_[min_i].seq))
            min_i = i;
    }
    if (value > keep_[min_i].value)
        keep_[min_i] = Exemplar{value, trace_id, seq};
}

std::vector<TailExemplars::Exemplar>
TailExemplars::sorted() const
{
    std::vector<Exemplar> out(keep_.begin(), keep_.begin() + used_);
    std::sort(out.begin(), out.end(),
              [](const Exemplar &x, const Exemplar &y) {
                  if (x.value != y.value)
                      return x.value > y.value;
                  return x.seq < y.seq;
              });
    return out;
}

const TailExemplars::Exemplar &
TailExemplars::max() const
{
    NASD_ASSERT(used_ > 0, "TailExemplars::max on empty reservoir");
    std::size_t max_i = 0;
    for (std::size_t i = 1; i < used_; ++i) {
        if (keep_[i].value > keep_[max_i].value ||
            (keep_[i].value == keep_[max_i].value &&
             keep_[i].seq < keep_[max_i].seq))
            max_i = i;
    }
    return keep_[max_i];
}

double
TailExemplars::threshold() const
{
    NASD_ASSERT(used_ > 0, "TailExemplars::threshold on empty reservoir");
    double t = keep_[0].value;
    for (std::size_t i = 1; i < used_; ++i)
        t = std::min(t, keep_[i].value);
    return t;
}

FlightJournal &
FlightRecorder::node(const std::string &name)
{
    auto it = nodes_.find(name);
    if (it == nodes_.end()) {
        it = nodes_
                 .emplace(name, std::unique_ptr<FlightJournal>(
                                    new FlightJournal(*this, name,
                                                      capacity_)))
                 .first;
    }
    return *it->second;
}

std::uint64_t
FlightRecorder::totalRecorded() const
{
    std::uint64_t total = 0;
    for (const auto &[name, journal] : nodes_)
        total += journal->recorded();
    return total;
}

void
FlightRecorder::recordLatency(std::string_view op, double value_ns,
                              std::uint64_t trace_id)
{
    auto it = exemplars_.find(op);
    if (it == exemplars_.end())
        it = exemplars_.emplace(std::string(op), TailExemplars{}).first;
    it->second.add(value_ns, trace_id, next_seq_);
}

const TailExemplars *
FlightRecorder::exemplars(std::string_view op) const
{
    auto it = exemplars_.find(op);
    return it == exemplars_.end() ? nullptr : &it->second;
}

std::vector<std::string>
FlightRecorder::exemplarOps() const
{
    std::vector<std::string> ops;
    for (const auto &[op, ex] : exemplars_)
        ops.push_back(op);
    return ops; // std::map iteration: already sorted
}

TraceContext
FlightRecorder::mintTrace()
{
    if (auto *t = tracer())
        return t->newRoot();
    return TraceContext{++next_trace_id_, 1};
}

TraceContext
FlightRecorder::mintChild(const TraceContext &parent)
{
    if (auto *t = tracer())
        return t->childOf(parent);
    if (parent.valid())
        return parent;
    return mintTrace();
}

std::vector<std::pair<const FlightJournal *, const FlightEvent *>>
FlightRecorder::merged() const
{
    std::vector<std::pair<const FlightJournal *, const FlightEvent *>> all;
    for (const auto &[name, journal] : nodes_) {
        for (std::size_t i = 0; i < journal->size(); ++i)
            all.emplace_back(journal.get(), &journal->at(i));
    }
    std::sort(all.begin(), all.end(),
              [](const auto &x, const auto &y) {
                  return x.second->seq < y.second->seq;
              });
    return all;
}

std::vector<std::pair<const FlightJournal *, const FlightEvent *>>
FlightRecorder::window(std::uint64_t center, std::uint64_t radius) const
{
    const std::uint64_t lo = center > radius ? center - radius : 0;
    const std::uint64_t hi = center + radius;
    auto all = merged();
    std::erase_if(all, [lo, hi](const auto &entry) {
        return entry.second->seq < lo || entry.second->seq > hi;
    });
    return all;
}

std::string
FlightRecorder::toJson() const
{
    std::string out = "{\n  \"schema_version\": 1,\n  \"nodes\": {";
    bool first_node = true;
    for (const auto &[name, journal] : nodes_) {
        out += first_node ? "\n" : ",\n";
        first_node = false;
        out += "    \"" + name + "\": {\"recorded\": " +
               std::to_string(journal->recorded()) +
               ", \"capacity\": " + std::to_string(journal->capacity()) +
               ", \"events\": [";
        for (std::size_t i = 0; i < journal->size(); ++i) {
            out += i == 0 ? "\n      " : ",\n      ";
            appendEventJson(out, journal->at(i));
        }
        out += "]}";
    }
    out += "\n  },\n  \"exemplars\": {";
    bool first_op = true;
    for (const auto &[op, ex] : exemplars_) {
        out += first_op ? "\n" : ",\n";
        first_op = false;
        out += "    \"" + op + "\": {\"count\": " +
               std::to_string(ex.count()) + ", \"samples\": [";
        const auto samples = ex.sorted();
        for (std::size_t i = 0; i < samples.size(); ++i) {
            char buf[128];
            std::snprintf(buf, sizeof buf,
                          "%s{\"value_ns\": %.0f, \"trace\": %llu, "
                          "\"seq\": %llu}",
                          i == 0 ? "" : ", ", samples[i].value,
                          static_cast<unsigned long long>(
                              samples[i].trace_id),
                          static_cast<unsigned long long>(samples[i].seq));
            out += buf;
        }
        out += "]}";
    }
    out += "\n  }\n}\n";
    return out;
}

void
FlightRecorder::writeJson(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        NASD_FATAL("flight recorder: cannot open '", path, "' for write");
    const std::string json = toJson();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
}

FlightRecorder &
flightRecorder()
{
    return g_current_recorder != nullptr ? *g_current_recorder
                                         : defaultRecorder();
}

FlightRecorderScope::FlightRecorderScope(std::size_t per_node_capacity)
    : recorder_(per_node_capacity), previous_(g_current_recorder)
{
    g_current_recorder = &recorder_;
}

FlightRecorderScope::~FlightRecorderScope()
{
    g_current_recorder = previous_;
}

void
armCrashDump(const char *path)
{
    g_crash_dump_path = path;
    setPanicHook(path != nullptr ? &crashDumpHook : nullptr);
}

} // namespace nasd::util
