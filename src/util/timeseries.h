/**
 * @file
 * Fixed-interval time series for simulation metrics.
 *
 * A TimeSeries holds one or more named columns sampled at a fixed
 * sim-time interval. sim::StatsPoller fills one while driving the
 * simulator; benches embed the result in BENCH_<name>.json via
 * toJson() so a reader can see the ramp and the plateau, not just the
 * end-of-run aggregate.
 *
 * Sample k of every column covers the interval
 * (start_ns + k*interval_ns, start_ns + (k+1)*interval_ns]; rate
 * columns are normalized per second of sim time over that interval.
 */
#ifndef NASD_UTIL_TIMESERIES_H_
#define NASD_UTIL_TIMESERIES_H_

#include <cstdint>
#include <string>
#include <vector>

namespace nasd::util {

class TimeSeries
{
  public:
    explicit TimeSeries(std::uint64_t interval_ns)
        : interval_ns_(interval_ns)
    {
    }

    std::uint64_t intervalNs() const { return interval_ns_; }

    /** Sim time of the first interval's start (set by the sampler). */
    void setStartNs(std::uint64_t ns) { start_ns_ = ns; }
    std::uint64_t startNs() const { return start_ns_; }

    /** Register a column; returns its index for append(). */
    std::size_t addSeries(const std::string &name);

    std::size_t seriesCount() const { return columns_.size(); }
    const std::string &seriesName(std::size_t i) const
    {
        return columns_[i].name;
    }

    /** Append one sample to column @p series. */
    void append(std::size_t series, double value);

    /** Samples in the longest column (columns normally stay in step). */
    std::size_t sampleCount() const;

    const std::vector<double> &values(std::size_t series) const
    {
        return columns_[series].values;
    }

    /**
     * {"interval_ns": N, "start_ns": S, "samples": K,
     *  "series": {name: [v, ...], ...}}
     */
    std::string toJson() const;

  private:
    struct Column
    {
        std::string name;
        std::vector<double> values;
    };

    std::uint64_t interval_ns_;
    std::uint64_t start_ns_ = 0;
    std::vector<Column> columns_;
};

} // namespace nasd::util

#endif // NASD_UTIL_TIMESERIES_H_
