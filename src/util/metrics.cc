#include "util/metrics.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/logging.h"

namespace nasd::util {

namespace {

const char *
kindName(int kind)
{
    switch (kind) {
      case 0:
        return "counter";
      case 1:
        return "gauge";
      case 2:
        return "histogram";
      case 3:
        return "latency";
    }
    return "?";
}

/** Escape a metric path for embedding in a JSON string literal. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Format a double the way JSON expects (no inf/nan, no trailing cruft). */
std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "0";
    std::ostringstream os;
    os.precision(17);
    os << v;
    return os.str();
}

/**
 * Minimal JSON scanner for importJson(): just enough to walk the
 * object structure toJson() emits. Panics on anything malformed.
 */
class JsonScanner
{
  public:
    explicit JsonScanner(std::string_view text) : text_(text) {}

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    char
    peek()
    {
        skipWs();
        NASD_ASSERT(pos_ < text_.size(), "importJson: truncated input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        NASD_ASSERT(peek() == c, "importJson: expected '", c, "' got '",
                    text_[pos_], "' at offset ", pos_);
        ++pos_;
    }

    bool
    consume(char c)
    {
        if (peek() != c)
            return false;
        ++pos_;
        return true;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            NASD_ASSERT(pos_ < text_.size(), "importJson: unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c == '\\') {
                NASD_ASSERT(pos_ < text_.size(),
                            "importJson: truncated escape");
                char e = text_[pos_++];
                switch (e) {
                  case '"':
                  case '\\':
                  case '/':
                    out += e;
                    break;
                  case 'n':
                    out += '\n';
                    break;
                  case 't':
                    out += '\t';
                    break;
                  case 'u': {
                    NASD_ASSERT(pos_ + 4 <= text_.size(),
                                "importJson: truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            NASD_PANIC("importJson: bad \\u digit '", h, "'");
                    }
                    NASD_ASSERT(code < 0x80,
                                "importJson: non-ASCII \\u escape");
                    out += static_cast<char>(code);
                    break;
                  }
                  default:
                    NASD_PANIC("importJson: unsupported escape '\\", e, "'");
                }
            } else {
                out += c;
            }
        }
    }

    double
    parseNumber()
    {
        skipWs();
        std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E')) {
            ++pos_;
        }
        NASD_ASSERT(pos_ > start, "importJson: expected number at offset ",
                    pos_);
        return std::stod(std::string(text_.substr(start, pos_ - start)));
    }

    /** Skip one complete JSON value (used for unknown/histogram keys). */
    void
    skipValue()
    {
        char c = peek();
        if (c == '{') {
            expect('{');
            if (consume('}'))
                return;
            do {
                (void)parseString();
                expect(':');
                skipValue();
            } while (consume(','));
            expect('}');
        } else if (c == '[') {
            expect('[');
            if (consume(']'))
                return;
            do {
                skipValue();
            } while (consume(','));
            expect(']');
        } else if (c == '"') {
            (void)parseString();
        } else {
            (void)parseNumber();
        }
    }

  private:
    std::string_view text_;
    std::size_t pos_ = 0;
};

MetricsRegistry g_default_registry;
MetricsRegistry *g_current_registry = &g_default_registry;

} // namespace

MetricsRegistry::Entry &
MetricsRegistry::lookup(const std::string &path, Kind kind)
{
    NASD_ASSERT(!path.empty(), "metric path must not be empty");
    auto [it, inserted] = entries_.try_emplace(path);
    Entry &e = it->second;
    if (inserted) {
        e.kind = kind;
        switch (kind) {
          case Kind::kCounter:
            e.counter = std::make_unique<Counter>();
            break;
          case Kind::kGauge:
            e.gauge = std::make_unique<Gauge>();
            break;
          case Kind::kHistogram:
            e.histogram = std::make_unique<SampleStats>();
            break;
          case Kind::kLatency:
            e.latency = std::make_unique<LogHistogram>();
            break;
        }
    } else if (e.kind != kind) {
        NASD_PANIC("metric '", path, "' registered as ",
                   kindName(static_cast<int>(e.kind)), ", requested as ",
                   kindName(static_cast<int>(kind)));
    }
    return e;
}

Counter &
MetricsRegistry::counter(const std::string &path)
{
    return *lookup(path, Kind::kCounter).counter;
}

Gauge &
MetricsRegistry::gauge(const std::string &path)
{
    return *lookup(path, Kind::kGauge).gauge;
}

SampleStats &
MetricsRegistry::histogram(const std::string &path)
{
    return *lookup(path, Kind::kHistogram).histogram;
}

LogHistogram &
MetricsRegistry::latency(const std::string &path)
{
    return *lookup(path, Kind::kLatency).latency;
}

std::string
MetricsRegistry::uniquePrefix(const std::string &stem)
{
    NASD_ASSERT(!stem.empty(), "metric prefix stem must not be empty");
    std::uint64_t n = ++prefix_counts_[stem];
    if (n == 1)
        return stem;
    return stem + "#" + std::to_string(n);
}

bool
MetricsRegistry::contains(const std::string &path) const
{
    return entries_.find(path) != entries_.end();
}

std::string
MetricsRegistry::toJson() const
{
    std::ostringstream os;
    os << "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[path, e] : entries_) {
        if (e.kind != Kind::kCounter)
            continue;
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(path)
           << "\": " << e.counter->value();
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
    first = true;
    for (const auto &[path, e] : entries_) {
        if (e.kind != Kind::kGauge)
            continue;
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(path)
           << "\": " << jsonNumber(e.gauge->value());
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
    first = true;
    for (const auto &[path, e] : entries_) {
        if (e.kind != Kind::kHistogram)
            continue;
        const SampleStats &h = *e.histogram;
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(path)
           << "\": {\"count\": " << h.count()
           << ", \"mean\": " << jsonNumber(h.mean())
           << ", \"min\": " << jsonNumber(h.min())
           << ", \"max\": " << jsonNumber(h.max())
           << ", \"p50\": " << jsonNumber(h.percentile(50))
           << ", \"p95\": " << jsonNumber(h.percentile(95))
           << ", \"p99\": " << jsonNumber(h.percentile(99)) << "}";
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n  \"latencies\": {";
    first = true;
    for (const auto &[path, e] : entries_) {
        if (e.kind != Kind::kLatency)
            continue;
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(path)
           << "\": " << e.latency->toJson();
        first = false;
    }
    os << (first ? "" : "\n  ") << "}\n}\n";
    return os.str();
}

void
MetricsRegistry::importJson(std::string_view json)
{
    // Kind collisions on (re-)import get an import-specific error
    // instead of falling through to the generic lookup panic: a dump
    // whose "counters" section names a path this registry holds as a
    // gauge is a corrupt or mismatched snapshot, and the message
    // should say which side is which.
    const auto requireKind = [this](const std::string &path, Kind want) {
        const auto it = entries_.find(path);
        if (it != entries_.end() && it->second.kind != want) {
            NASD_PANIC("importJson: '", path, "' already registered as ",
                       kindName(static_cast<int>(it->second.kind)),
                       ", import provides a ",
                       kindName(static_cast<int>(want)));
        }
    };
    JsonScanner scan(json);
    scan.expect('{');
    if (scan.consume('}'))
        return;
    do {
        std::string section = scan.parseString();
        scan.expect(':');
        if (section == "counters") {
            scan.expect('{');
            if (!scan.consume('}')) {
                do {
                    std::string path = scan.parseString();
                    scan.expect(':');
                    double v = scan.parseNumber();
                    requireKind(path, Kind::kCounter);
                    Counter &c = counter(path);
                    c.reset();
                    c.add(static_cast<std::uint64_t>(v));
                } while (scan.consume(','));
                scan.expect('}');
            }
        } else if (section == "gauges") {
            scan.expect('{');
            if (!scan.consume('}')) {
                do {
                    std::string path = scan.parseString();
                    scan.expect(':');
                    requireKind(path, Kind::kGauge);
                    gauge(path).set(scan.parseNumber());
                } while (scan.consume(','));
                scan.expect('}');
            }
        } else if (section == "latencies") {
            scan.expect('{');
            if (!scan.consume('}')) {
                do {
                    std::string path = scan.parseString();
                    scan.expect(':');
                    std::uint64_t count = 0, sum = 0, lo = 0, hi = 0;
                    std::vector<std::pair<std::uint64_t, std::uint64_t>>
                        buckets;
                    scan.expect('{');
                    if (!scan.consume('}')) {
                        do {
                            std::string key = scan.parseString();
                            scan.expect(':');
                            if (key == "count") {
                                count = static_cast<std::uint64_t>(
                                    scan.parseNumber());
                            } else if (key == "sum") {
                                sum = static_cast<std::uint64_t>(
                                    scan.parseNumber());
                            } else if (key == "min") {
                                lo = static_cast<std::uint64_t>(
                                    scan.parseNumber());
                            } else if (key == "max") {
                                hi = static_cast<std::uint64_t>(
                                    scan.parseNumber());
                            } else if (key == "buckets") {
                                scan.expect('[');
                                if (!scan.consume(']')) {
                                    do {
                                        scan.expect('[');
                                        auto lower =
                                            static_cast<std::uint64_t>(
                                                scan.parseNumber());
                                        scan.expect(',');
                                        auto n = static_cast<std::uint64_t>(
                                            scan.parseNumber());
                                        scan.expect(']');
                                        buckets.emplace_back(lower, n);
                                    } while (scan.consume(','));
                                    scan.expect(']');
                                }
                            } else {
                                // mean/p50/p95/p99 are derived state.
                                scan.skipValue();
                            }
                        } while (scan.consume(','));
                        scan.expect('}');
                    }
                    requireKind(path, Kind::kLatency);
                    latency(path).restore(count, sum, lo, hi, buckets);
                } while (scan.consume(','));
                scan.expect('}');
            }
        } else {
            scan.skipValue();
        }
    } while (scan.consume(','));
    scan.expect('}');
}

void
MetricsRegistry::forEachCounter(
    const std::function<void(const std::string &, const Counter &)> &fn)
    const
{
    for (const auto &[path, e] : entries_)
        if (e.kind == Kind::kCounter)
            fn(path, *e.counter);
}

void
MetricsRegistry::forEachGauge(
    const std::function<void(const std::string &, const Gauge &)> &fn) const
{
    for (const auto &[path, e] : entries_)
        if (e.kind == Kind::kGauge)
            fn(path, *e.gauge);
}

void
MetricsRegistry::forEachHistogram(
    const std::function<void(const std::string &, const SampleStats &)> &fn)
    const
{
    for (const auto &[path, e] : entries_)
        if (e.kind == Kind::kHistogram)
            fn(path, *e.histogram);
}

void
MetricsRegistry::forEachLatency(
    const std::function<void(const std::string &, const LogHistogram &)> &fn)
    const
{
    for (const auto &[path, e] : entries_)
        if (e.kind == Kind::kLatency)
            fn(path, *e.latency);
}

MetricsRegistry &
metrics()
{
    return *g_current_registry;
}

MetricsScope::MetricsScope() : previous_(g_current_registry)
{
    g_current_registry = &registry_;
}

MetricsScope::~MetricsScope()
{
    g_current_registry = previous_;
}

} // namespace nasd::util
