/**
 * @file
 * Synchronization primitives for simulation coroutines.
 *
 * Semaphore: counted permits with FIFO handoff (no barging), the basis
 * for all queued resources.
 * Gate: one-shot, level-triggered broadcast (once open, stays open).
 * Barrier: classic N-party rendezvous, reusable across generations.
 * parallelAll / parallelGather: fork a batch of lazy Tasks so they run
 * concurrently in simulated time and join on all of them.
 */
#ifndef NASD_SIM_SYNC_H_
#define NASD_SIM_SYNC_H_

#include <coroutine>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "sim/simulator.h"
#include "sim/task.h"
#include "util/logging.h"

namespace nasd::sim {

/** Counted semaphore with FIFO wakeup order. */
class Semaphore
{
  public:
    Semaphore(Simulator &sim, std::uint32_t permits)
        : sim_(sim), permits_(permits)
    {}

    Semaphore(const Semaphore &) = delete;
    Semaphore &operator=(const Semaphore &) = delete;

    struct Awaiter
    {
        Semaphore &sem;

        bool
        await_ready() const
        {
            if (sem.permits_ > 0 && sem.waiters_.empty()) {
                --sem.permits_;
                return true;
            }
            return false;
        }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            // await_ready() declined, so either the queue is non-empty
            // (permits must be 0 by the drain invariant) or no permits
            // remain. Either way there is nothing to hand out: just
            // enqueue. Calling drain() here could schedule a resume of
            // h while its frame is still mid-suspend.
            NASD_ASSERT(sem.permits_ == 0,
                        "semaphore held permits while a waiter queued");
            sem.waiters_.push_back(h);
        }

        void await_resume() const {}
    };

    /** co_await acquire(): obtain one permit, FIFO order. */
    Awaiter acquire() { return Awaiter{*this}; }

    /** Return one permit; wakes the oldest waiter (at the current tick). */
    void
    release()
    {
        ++permits_;
        drain();
    }

    std::uint32_t availablePermits() const { return permits_; }
    std::size_t waiterCount() const { return waiters_.size(); }

  private:
    /** Hand permits to waiters in FIFO order via scheduled resumes. */
    void
    drain()
    {
        while (permits_ > 0 && !waiters_.empty()) {
            auto h = waiters_.front();
            waiters_.pop_front();
            --permits_;
            sim_.scheduleIn(0, [h] { h.resume(); });
        }
    }

    Simulator &sim_;
    std::uint32_t permits_;
    std::deque<std::coroutine_handle<>> waiters_;
};

/**
 * Acquire @p sem and return how long the caller waited in the queue.
 *
 * This is the attribution hook for queued resources: every acquisition
 * site outside src/sim must go through it (enforced by
 * tools/check_invariants.py) so queue-wait time is observable — callers
 * feed the returned wait into per-resource counters and the active
 * op's util::OpAttribution instead of losing it inside a bare
 * co_await sem.acquire().
 */
inline Task<Tick>
timedAcquire(Simulator &sim, Semaphore &sem)
{
    const Tick start = sim.now();
    co_await sem.acquire();
    co_return sim.now() - start;
}

/**
 * A held Semaphore permit that releases itself when destroyed.
 *
 * Returned by scopedAcquire(); the mandatory holder for any permit
 * whose scope contains an early return, a Result-propagating bail-out,
 * or a co_await that can throw — a manual sem.release() on every exit
 * path is exactly the pattern that leaked window permits before
 * (tools/nasd_analyze.py check A4 bans it outside src/sim).
 *
 * release() hands the permit back explicitly; use it on the happy path
 * when the release must happen at a specific point (or in a specific
 * order across several permits) rather than at scope exit. The
 * destructor is then a no-op, serving only as the safety net for the
 * paths that never reach it.
 */
class ScopedPermit
{
  public:
    ScopedPermit() = default;

    ScopedPermit(Semaphore &sem, Tick waited)
        : sem_(&sem), waited_(waited)
    {}

    ScopedPermit(ScopedPermit &&other) noexcept
        : sem_(std::exchange(other.sem_, nullptr)), waited_(other.waited_)
    {}

    ScopedPermit &
    operator=(ScopedPermit &&other) noexcept
    {
        if (this != &other) {
            release();
            sem_ = std::exchange(other.sem_, nullptr);
            waited_ = other.waited_;
        }
        return *this;
    }

    ScopedPermit(const ScopedPermit &) = delete;
    ScopedPermit &operator=(const ScopedPermit &) = delete;

    ~ScopedPermit() { release(); }

    /** Return the permit now (idempotent). */
    void
    release()
    {
        if (auto *sem = std::exchange(sem_, nullptr))
            sem->release();
    }

    bool held() const { return sem_ != nullptr; }

    /** Queue wait measured by scopedAcquire(), for attribution. */
    Tick waitNs() const { return waited_; }

  private:
    Semaphore *sem_ = nullptr;
    Tick waited_ = 0;
};

/**
 * Acquire @p sem and return a ScopedPermit carrying the measured queue
 * wait. The RAII sibling of timedAcquire(): same attribution contract,
 * plus leak-proof release on every exit path.
 */
inline Task<ScopedPermit>
scopedAcquire(Simulator &sim, Semaphore &sem)
{
    const Tick start = sim.now();
    co_await sem.acquire();
    co_return ScopedPermit(sem, sim.now() - start);
}

/** One-shot, level-triggered gate: once open(), all waits pass. */
class Gate
{
  public:
    explicit Gate(Simulator &sim) : sim_(sim) {}

    Gate(const Gate &) = delete;
    Gate &operator=(const Gate &) = delete;

    struct Awaiter
    {
        Gate &gate;

        bool await_ready() const { return gate.open_; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            gate.waiters_.push_back(h);
        }

        void await_resume() const {}
    };

    /** co_await wait(): proceed once the gate is (or becomes) open. */
    Awaiter wait() { return Awaiter{*this}; }

    /** Open the gate and release every current and future waiter. */
    void
    open()
    {
        if (open_)
            return;
        open_ = true;
        for (auto h : waiters_)
            sim_.scheduleIn(0, [h] { h.resume(); });
        waiters_.clear();
    }

    bool isOpen() const { return open_; }

  private:
    Simulator &sim_;
    bool open_ = false;
    std::vector<std::coroutine_handle<>> waiters_;
};

/** Reusable N-party barrier. */
class Barrier
{
  public:
    Barrier(Simulator &sim, std::uint32_t parties)
        : sim_(sim), parties_(parties)
    {
        NASD_ASSERT(parties > 0);
    }

    Barrier(const Barrier &) = delete;
    Barrier &operator=(const Barrier &) = delete;

    struct Awaiter
    {
        Barrier &barrier;

        bool await_ready() const { return barrier.parties_ == 1; }

        bool
        await_suspend(std::coroutine_handle<> h)
        {
            // The last arriver releases the rest and continues without
            // suspending (return false). Releasing here — not in
            // await_resume — keeps the release decision off the resume
            // path, where waiters_ may already hold arrivals for the
            // *next* generation and a stale size check could release
            // them early.
            if (barrier.waiters_.size() + 1 == barrier.parties_) {
                barrier.releaseAll();
                return false;
            }
            barrier.waiters_.push_back(h);
            return true;
        }

        void await_resume() const {}
    };

    /** co_await arrive(): block until all parties have arrived. */
    Awaiter arrive() { return Awaiter{*this}; }

  private:
    void
    releaseAll()
    {
        for (auto h : waiters_)
            sim_.scheduleIn(0, [h] { h.resume(); });
        waiters_.clear();
    }

    Simulator &sim_;
    std::uint32_t parties_;
    std::vector<std::coroutine_handle<>> waiters_;
};

namespace detail {

/** Shared completion state for a parallel join. */
struct JoinState
{
    explicit JoinState(Simulator &sim) : gate(sim) {}
    std::size_t remaining = 0;
    Gate gate;
};

inline Task<void>
notifyWhenDone(Task<void> task, std::shared_ptr<JoinState> state)
{
    co_await std::move(task);
    if (--state->remaining == 0)
        state->gate.open();
}

template <typename T>
Task<void>
gatherWhenDone(Task<T> task, std::shared_ptr<JoinState> state,
               std::vector<std::optional<T>> &out, std::size_t index)
{
    out[index].emplace(co_await std::move(task));
    if (--state->remaining == 0)
        state->gate.open();
}

} // namespace detail

/**
 * Run all @p tasks concurrently (in simulated time) and return when
 * every one has finished.
 */
inline Task<void>
parallelAll(Simulator &sim, std::vector<Task<void>> tasks)
{
    if (tasks.empty())
        co_return;
    auto state = std::make_shared<detail::JoinState>(sim);
    state->remaining = tasks.size();
    for (auto &t : tasks)
        sim.spawn(detail::notifyWhenDone(std::move(t), state));
    co_await state->gate.wait();
}

/**
 * Run all @p tasks concurrently and collect their results, in input
 * order.
 */
template <typename T>
Task<std::vector<T>>
parallelGather(Simulator &sim, std::vector<Task<T>> tasks)
{
    std::vector<std::optional<T>> slots(tasks.size());
    if (!tasks.empty()) {
        auto state = std::make_shared<detail::JoinState>(sim);
        state->remaining = tasks.size();
        for (std::size_t i = 0; i < tasks.size(); ++i) {
            sim.spawn(detail::gatherWhenDone<T>(std::move(tasks[i]), state,
                                                slots, i));
        }
        co_await state->gate.wait();
    }
    std::vector<T> results;
    results.reserve(slots.size());
    for (auto &slot : slots)
        results.push_back(std::move(*slot));
    co_return results;
}

} // namespace nasd::sim

#endif // NASD_SIM_SYNC_H_
