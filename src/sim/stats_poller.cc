#include "sim/stats_poller.h"

#include <utility>

#include "util/fleet.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace nasd::sim {

StatsPoller::StatsPoller(Simulator &sim, util::TimeSeries &out,
                         Tick interval)
    : sim_(sim), out_(out), interval_(interval)
{
    NASD_ASSERT(interval > 0, "poller interval must be positive");
    NASD_ASSERT(out.intervalNs() == interval,
                "TimeSeries interval does not match poller interval");
}

void
StatsPoller::addRate(const std::string &name,
                     std::function<double()> cumulative, double scale)
{
    probes_.push_back(
        Probe{out_.addSeries(name), true, scale, std::move(cumulative)});
}

void
StatsPoller::addGauge(const std::string &name,
                      std::function<double()> value)
{
    probes_.push_back(
        Probe{out_.addSeries(name), false, 1.0, std::move(value)});
}

void
StatsPoller::addFleetPercentile(const std::string &name,
                                const std::string &group, double p,
                                double scale)
{
    addGauge(name, [group, p, scale]() {
        const auto rollup = util::FleetRollup::collect(util::metrics());
        for (const util::FleetOpRollup &roll : rollup.ops())
            if (roll.group == group)
                return roll.merged.percentile(p) * scale;
        return 0.0;
    });
}

void
StatsPoller::sample()
{
    const double interval_s = toSeconds(interval_);
    for (Probe &p : probes_) {
        if (p.is_rate) {
            const double cur = p.read();
            out_.append(p.column, (cur - p.last) / interval_s * p.scale);
            p.last = cur;
        } else {
            out_.append(p.column, p.read());
        }
    }
}

void
StatsPoller::run()
{
    out_.setStartNs(sim_.now());
    for (Probe &p : probes_)
        if (p.is_rate)
            p.last = p.read();
    bool more = true;
    while (more) {
        more = sim_.runUntil(sim_.now() + interval_);
        sample();
    }
}

} // namespace nasd::sim
