#include "sim/stats_poller.h"

#include <utility>

#include "util/logging.h"

namespace nasd::sim {

StatsPoller::StatsPoller(Simulator &sim, util::TimeSeries &out,
                         Tick interval)
    : sim_(sim), out_(out), interval_(interval)
{
    NASD_ASSERT(interval > 0, "poller interval must be positive");
    NASD_ASSERT(out.intervalNs() == interval,
                "TimeSeries interval does not match poller interval");
}

void
StatsPoller::addRate(const std::string &name,
                     std::function<double()> cumulative, double scale)
{
    probes_.push_back(
        Probe{out_.addSeries(name), true, scale, std::move(cumulative)});
}

void
StatsPoller::addGauge(const std::string &name,
                      std::function<double()> value)
{
    probes_.push_back(
        Probe{out_.addSeries(name), false, 1.0, std::move(value)});
}

void
StatsPoller::sample()
{
    const double interval_s = toSeconds(interval_);
    for (Probe &p : probes_) {
        if (p.is_rate) {
            const double cur = p.read();
            out_.append(p.column, (cur - p.last) / interval_s * p.scale);
            p.last = cur;
        } else {
            out_.append(p.column, p.read());
        }
    }
}

void
StatsPoller::run()
{
    out_.setStartNs(sim_.now());
    for (Probe &p : probes_)
        if (p.is_rate)
            p.last = p.read();
    bool more = true;
    while (more) {
        more = sim_.runUntil(sim_.now() + interval_);
        sample();
    }
}

} // namespace nasd::sim
