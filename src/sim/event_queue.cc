#include "sim/event_queue.h"

#include <algorithm>
#include <bit>

namespace nasd::sim {

namespace {

/** Level whose 6-bit group is the highest one where @p when differs
 *  from @p base. Returns 0 when when == base (handled by caller). */
std::size_t
divergenceLevel(Tick base, Tick when)
{
    const Tick diff = base ^ when;
    if (diff == 0)
        return 0;
    const auto high_bit =
        static_cast<std::size_t>(std::bit_width(diff) - 1);
    return high_bit / TimerWheel::kLevelBits;
}

/** Min-heap order for the pre-base escape hatch: earliest (when, seq)
 *  at the front. std::push_heap/pop_heap build max-heaps, so this is
 *  the inverted comparison. */
bool
laterInHeap(const EventNode *a, const EventNode *b)
{
    if (a->when != b->when)
        return a->when > b->when;
    return a->seq > b->seq;
}

} // namespace

TimerWheel::~TimerWheel()
{
    // Nodes still queued at teardown (e.g. a Simulator destroyed with
    // pending timers) hold EventFns that may own resources; destroy
    // them. The pool chunks themselves free with pool_.
    for (std::size_t i = batch_head_; i < batch_.size(); ++i)
        batch_[i]->fn.reset();
    for (EventNode *n : early_)
        n->fn.reset();
    for (auto *head : slots_) {
        for (EventNode *n = head; n != nullptr; n = n->next)
            n->fn.reset();
    }
}

void
TimerWheel::insert(EventNode *n)
{
    if (n->when < base_) {
        // Legal only when the wheel ran ahead of the caller's clock
        // (cancelled timers at the front); see early_'s declaration.
        early_.push_back(n);
        std::push_heap(early_.begin(), early_.end(), laterInHeap);
        return;
    }
    if (n->when == base_) {
        // Expires at the tick currently being served: join the live
        // batch. Sequence numbers are allocated monotonically and the
        // batch is drained in seq order, so appending keeps it sorted
        // (a mid-drain schedule always has a larger seq than every
        // pending batch entry).
        batch_.push_back(n);
        return;
    }
    const std::size_t level = divergenceLevel(base_, n->when);
    const std::size_t idx = slotIndex(level, n->when);
    EventNode *&head = slot(level, idx);
    n->next = head;
    head = n;
    occupancy_[level] |= std::uint64_t{1} << idx;
}

TimerHandle
TimerWheel::push(Tick when, std::uint64_t seq, EventFn fn, bool cancelable)
{
    EventNode *n = pool_.allocate();
    n->when = when;
    n->seq = seq;
    n->fn = std::move(fn);
    insert(n);
    ++size_;
    if (!cancelable)
        return TimerHandle{};
    return TimerHandle{n->index, n->generation};
}

bool
TimerWheel::cancel(const TimerHandle &h)
{
    if (!h.valid() || h.index >= pool_.allocatedNodes())
        return false;
    EventNode &n = pool_.at(h.index);
    if (n.generation != h.generation || n.cancelled)
        return false; // stale: fired, recycled, or double-cancel
    n.cancelled = true;
    // Lazy removal: the node stays queued and gates nextTime()/size()
    // exactly like the seed scheduler's cancelled_ set did — a
    // cancelled deadline still counts as "an event remains" for
    // runUntil(), it just doesn't advance the clock when popped.
    return true;
}

void
TimerWheel::advance()
{
    NASD_ASSERT(size_ > 0, "timing wheel: advance on empty wheel");
    // Cascade until the earliest pending events sit in the batch.
    // Each pass finds the lowest occupied level's earliest slot; if
    // that slot is above level 0 its chain scatters to lower levels
    // (or the batch) after the base moves to the slot's span start.
    while (true) {
        std::size_t level = 0;
        while (level < kLevels && occupancy_[level] == 0)
            ++level;
        NASD_ASSERT(level < kLevels, "timing wheel: occupancy lost events");

        // Earliest occupied slot at this level. Slots at the node's
        // divergence level are always strictly ahead of base's own
        // group position, so the minimum set bit IS the next expiry —
        // no wraparound arithmetic needed.
        const auto idx = static_cast<std::size_t>(
            std::countr_zero(occupancy_[level]));
        EventNode *chain = slot(level, idx);
        slot(level, idx) = nullptr;
        occupancy_[level] &= ~(std::uint64_t{1} << idx);

        // Move base to the start of this slot's span: keep the groups
        // above `level`, set group `level` to idx, zero the rest.
        const std::size_t shift = kLevelBits * (level + 1);
        Tick new_base =
            shift >= 64 ? 0 : (base_ >> shift) << shift;
        new_base |= Tick{idx} << (kLevelBits * level);
        NASD_ASSERT(new_base >= base_, "timing wheel: base went backwards");
        base_ = new_base;

        // Re-insert the chain: exact hits join the batch, later ones
        // fall to lower levels of the wheel.
        bool any_hit = false;
        for (EventNode *n = chain; n != nullptr;) {
            EventNode *next = n->next;
            n->next = nullptr;
            if (n->when == base_) {
                batch_.push_back(n);
                any_hit = true;
            } else {
                insert(n);
            }
            n = next;
        }
        if (any_hit)
            break;
        // Pure cascade (a far-future chain scattered without any node
        // expiring at the slot start): keep going.
    }
    // Batch holds every event at tick base_. Drain in seq order to
    // reproduce the seed heap's same-tick FIFO bit-for-bit. (Slot
    // chains are LIFO and cascades interleave chains arbitrarily, so
    // an explicit sort is what makes the order input-independent.)
    std::sort(batch_.begin(), batch_.end(),
              [](const EventNode *a, const EventNode *b) {
                  return a->seq < b->seq;
              });
    batch_head_ = 0;
}

Tick
TimerWheel::nextTime()
{
    NASD_ASSERT(size_ > 0, "timing wheel: nextTime on empty wheel");
    if (!early_.empty())
        return early_.front()->when; // pre-base events precede the rest
    if (batch_head_ < batch_.size())
        return batch_[batch_head_]->when; // whole batch shares one tick
    // Peek without cascading: the earliest event lives in the minimum
    // occupied slot of the lowest occupied level (lower levels are
    // strictly nearer in time), so one chain scan finds its expiry.
    // Deliberately non-mutating — see the header comment on why the
    // base must not advance on a peek.
    std::size_t level = 0;
    while (level < kLevels && occupancy_[level] == 0)
        ++level;
    NASD_ASSERT(level < kLevels, "timing wheel: occupancy lost events");
    const auto idx =
        static_cast<std::size_t>(std::countr_zero(occupancy_[level]));
    Tick min_when = kTickMax;
    for (const EventNode *n = slot(level, idx); n != nullptr; n = n->next)
        min_when = std::min(min_when, n->when);
    return min_when;
}

EventNode *
TimerWheel::popNext()
{
    NASD_ASSERT(size_ > 0, "timing wheel: popNext on empty wheel");
    if (!early_.empty()) {
        std::pop_heap(early_.begin(), early_.end(), laterInHeap);
        EventNode *n = early_.back();
        early_.pop_back();
        --size_;
        return n;
    }
    if (batch_head_ >= batch_.size()) {
        batch_.clear();
        advance();
    }
    EventNode *n = batch_[batch_head_++];
    --size_;
    return n;
}

} // namespace nasd::sim
