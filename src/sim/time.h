/**
 * @file
 * Simulated time base.
 *
 * One Tick is one simulated nanosecond. 64 bits of nanoseconds covers
 * ~584 years of simulated time, far beyond any experiment here.
 */
#ifndef NASD_SIM_TIME_H_
#define NASD_SIM_TIME_H_

#include <cstdint>

namespace nasd::sim {

/** Simulated time in nanoseconds. */
using Tick = std::uint64_t;

/** Maximum representable tick (used as "never"). */
inline constexpr Tick kTickMax = ~static_cast<Tick>(0);

constexpr Tick
nsec(double n)
{
    return static_cast<Tick>(n);
}

constexpr Tick
usec(double u)
{
    return static_cast<Tick>(u * 1e3);
}

constexpr Tick
msec(double m)
{
    return static_cast<Tick>(m * 1e6);
}

constexpr Tick
sec(double s)
{
    return static_cast<Tick>(s * 1e9);
}

/** Convert ticks to floating-point seconds (for reporting). */
constexpr double
toSeconds(Tick t)
{
    return static_cast<double>(t) / 1e9;
}

/** Convert ticks to floating-point milliseconds (for reporting). */
constexpr double
toMillis(Tick t)
{
    return static_cast<double>(t) / 1e6;
}

} // namespace nasd::sim

#endif // NASD_SIM_TIME_H_
