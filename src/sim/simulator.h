/**
 * @file
 * Discrete-event simulator core.
 *
 * A Simulator owns the event queue and the simulated clock. Simulation
 * logic is expressed as coroutines (see task.h) spawned onto the
 * simulator; they advance time by awaiting delay() or by queueing on
 * resources (see resource.h / sync.h).
 *
 * Events at the same tick execute in FIFO order of scheduling, making
 * every run deterministic. The queue is a hierarchical timing wheel
 * with pooled event nodes (see event_queue.h): O(1) amortized
 * push/pop/cancel and no per-event heap allocation for small
 * callbacks, replacing the original binary heap of std::function —
 * with the executed (when, seq) sequence bit-identical to it.
 */
#ifndef NASD_SIM_SIMULATOR_H_
#define NASD_SIM_SIMULATOR_H_

#include <coroutine>
#include <cstddef>
#include <cstdint>

#include "sim/event_queue.h"
#include "sim/task.h"
#include "sim/time.h"

namespace nasd::sim {

/** Discrete-event engine: clock, event queue, and process ownership. */
class Simulator
{
  public:
    Simulator() = default;

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    ~Simulator();

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p fn to run at absolute time @p when (>= now). */
    void
    schedule(Tick when, EventFn fn)
    {
        NASD_ASSERT(when >= now_, "scheduling into the past: ", when,
                    " < ", now_);
        wheel_.push(when, next_seq_++, std::move(fn),
                    /*cancelable=*/false);
    }

    /** Schedule @p fn to run @p delta ticks from now. */
    void
    scheduleIn(Tick delta, EventFn fn)
    {
        schedule(now_ + delta, std::move(fn));
    }

    /**
     * Schedule @p fn at absolute time @p when and return a handle that
     * cancelScheduled() accepts. Used for timers that usually do not
     * fire (RPC deadlines): a cancelled event is skipped when popped
     * and — critically — does NOT advance the clock, so pending timers
     * of already-completed operations never inflate measured times in
     * run-until-empty loops.
     */
    TimerHandle
    scheduleCancelable(Tick when, EventFn fn)
    {
        NASD_ASSERT(when >= now_, "scheduling into the past: ", when,
                    " < ", now_);
        return wheel_.push(when, next_seq_++, std::move(fn),
                           /*cancelable=*/true);
    }

    /** scheduleCancelable() relative to now. */
    TimerHandle
    scheduleCancelableIn(Tick delta, EventFn fn)
    {
        return scheduleCancelable(now_ + delta, std::move(fn));
    }

    /**
     * Revoke a scheduleCancelable() event. O(1); no per-cancel state
     * is retained. A stale handle — the event already fired, was
     * already cancelled, or the handle is default-constructed — is a
     * harmless no-op thanks to the pool's generation counters, so
     * callers no longer need their own "already fired" bookkeeping.
     */
    void cancelScheduled(TimerHandle h) { wheel_.cancel(h); }

    /**
     * Start a top-level process. The simulator takes ownership of the
     * coroutine frame; it runs synchronously until its first suspension.
     * Exceptions escaping a spawned process are rethrown from run().
     */
    void spawn(Task<void> task);

    /** Run until the event queue is empty. */
    void run();

    /**
     * Run all events up to and including @p deadline, then set the
     * clock to @p deadline.
     * @return true if events remain scheduled after the deadline.
     */
    bool runUntil(Tick deadline);

    /** Total events executed so far (for tests and sanity checks). */
    std::uint64_t eventsExecuted() const { return events_executed_; }

    /**
     * Process-wide count of events executed across every Simulator
     * instance. Feeds the wall-clock `sim/events_per_sec` throughput
     * gauge in bench JSON dumps (see bench_util.h); deliberately NOT
     * part of any simulated quantity, so it never affects determinism.
     */
    static std::uint64_t totalEventsExecuted() { return total_events_; }

    /**
     * Time of the last event actually executed. After run() this
     * equals now(); after runUntil() it excludes the idle tail between
     * the final event and the rounded-up deadline, so sampled runs
     * (StatsPoller) measure the same elapsed time as plain run().
     */
    Tick lastEventTime() const { return last_event_time_; }

    /** Number of live (not yet finished) spawned processes. */
    std::size_t liveProcesses() const { return live_count_; }

    // Awaitable helpers ---------------------------------------------------

    /** Awaitable that suspends the coroutine for @p dt ticks. */
    struct DelayAwaiter
    {
        Simulator &sim;
        Tick dt;

        bool await_ready() const { return false; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            sim.scheduleIn(dt, [h] { h.resume(); });
        }

        void await_resume() const {}
    };

    /** co_await sim.delay(t): advance this process by @p dt ticks. */
    DelayAwaiter delay(Tick dt) { return DelayAwaiter{*this, dt}; }

  private:
    friend void detail::rootFinished(Simulator &,
                                     detail::PromiseBase &) noexcept;

    /** Reclaim finished top-level processes; rethrow their exceptions. */
    void sweepFinished();

    bool executeNext();

    Tick now_ = 0;
    Tick last_event_time_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t events_executed_ = 0;
    TimerWheel wheel_;

    // Root coroutines live on intrusive lists threaded through their
    // promises (see PromiseBase): a doubly-linked list of running
    // processes (O(1) unlink when one finishes) and a singly-linked
    // FIFO of finished ones awaiting sweepFinished(), which is thus
    // O(finished), not O(all processes).
    detail::PromiseBase *live_head_ = nullptr;
    detail::PromiseBase *finished_head_ = nullptr;
    detail::PromiseBase *finished_tail_ = nullptr;
    std::size_t live_count_ = 0;

    static inline std::uint64_t total_events_ = 0;
};

} // namespace nasd::sim

#endif // NASD_SIM_SIMULATOR_H_
