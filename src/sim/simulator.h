/**
 * @file
 * Discrete-event simulator core.
 *
 * A Simulator owns the event queue and the simulated clock. Simulation
 * logic is expressed as coroutines (see task.h) spawned onto the
 * simulator; they advance time by awaiting delay() or by queueing on
 * resources (see resource.h / sync.h).
 *
 * Events at the same tick execute in FIFO order of scheduling, making
 * every run deterministic.
 */
#ifndef NASD_SIM_SIMULATOR_H_
#define NASD_SIM_SIMULATOR_H_

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/task.h"
#include "sim/time.h"

namespace nasd::sim {

/** Discrete-event engine: clock, event queue, and process ownership. */
class Simulator
{
  public:
    Simulator() = default;

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    ~Simulator();

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p fn to run at absolute time @p when (>= now). */
    void schedule(Tick when, std::function<void()> fn);

    /** Schedule @p fn to run @p delta ticks from now. */
    void
    scheduleIn(Tick delta, std::function<void()> fn)
    {
        schedule(now_ + delta, std::move(fn));
    }

    /**
     * Schedule @p fn at absolute time @p when and return a handle that
     * cancelScheduled() accepts. Used for timers that usually do not
     * fire (RPC deadlines): a cancelled event is skipped when popped
     * and — critically — does NOT advance the clock, so pending timers
     * of already-completed operations never inflate measured times in
     * run-until-empty loops.
     */
    std::uint64_t scheduleCancelable(Tick when, std::function<void()> fn);

    /** scheduleCancelable() relative to now. */
    std::uint64_t
    scheduleCancelableIn(Tick delta, std::function<void()> fn)
    {
        return scheduleCancelable(now_ + delta, std::move(fn));
    }

    /**
     * Revoke a scheduleCancelable() event. Lazy deletion: the entry
     * stays in the heap and is discarded when popped. Cancelling an
     * event that already fired is harmless only if the id is never
     * reused, which holds because seq numbers are unique — but callers
     * should still guard with their own "fired" flag to keep the
     * cancelled set from accumulating.
     */
    void cancelScheduled(std::uint64_t id) { cancelled_.insert(id); }

    /**
     * Start a top-level process. The simulator takes ownership of the
     * coroutine frame; it runs synchronously until its first suspension.
     * Exceptions escaping a spawned process are rethrown from run().
     */
    void spawn(Task<void> task);

    /** Run until the event queue is empty. */
    void run();

    /**
     * Run all events up to and including @p deadline, then set the
     * clock to @p deadline.
     * @return true if events remain scheduled after the deadline.
     */
    bool runUntil(Tick deadline);

    /** Total events executed so far (for tests and sanity checks). */
    std::uint64_t eventsExecuted() const { return events_executed_; }

    /**
     * Time of the last event actually executed. After run() this
     * equals now(); after runUntil() it excludes the idle tail between
     * the final event and the rounded-up deadline, so sampled runs
     * (StatsPoller) measure the same elapsed time as plain run().
     */
    Tick lastEventTime() const { return last_event_time_; }

    /** Number of live (not yet finished) spawned processes. */
    std::size_t liveProcesses() const;

    // Awaitable helpers ---------------------------------------------------

    /** Awaitable that suspends the coroutine for @p dt ticks. */
    struct DelayAwaiter
    {
        Simulator &sim;
        Tick dt;

        bool await_ready() const { return false; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            sim.scheduleIn(dt, [h] { h.resume(); });
        }

        void await_resume() const {}
    };

    /** co_await sim.delay(t): advance this process by @p dt ticks. */
    DelayAwaiter delay(Tick dt) { return DelayAwaiter{*this, dt}; }

  private:
    struct PendingEvent
    {
        Tick when;
        std::uint64_t seq;
        std::function<void()> fn;

        bool
        operator>(const PendingEvent &other) const
        {
            if (when != other.when)
                return when > other.when;
            return seq > other.seq;
        }
    };

    /** Reclaim finished top-level processes; rethrow their exceptions. */
    void sweepFinished();

    bool executeNext();

    using EventHeap =
        std::priority_queue<PendingEvent, std::vector<PendingEvent>,
                            std::greater<PendingEvent>>;

    Tick now_ = 0;
    Tick last_event_time_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t events_executed_ = 0;
    EventHeap events_;
    std::unordered_set<std::uint64_t> cancelled_;
    std::vector<std::coroutine_handle<Task<void>::promise_type>> roots_;
};

} // namespace nasd::sim

#endif // NASD_SIM_SIMULATOR_H_
