/**
 * @file
 * Pooled event storage and the hierarchical timing-wheel queue behind
 * sim::Simulator.
 *
 * Three pieces, all in service of making the scheduler an O(1) hot
 * path at fleet scale (fig9 --drives 256) without giving up the
 * bit-for-bit determinism every bench baseline depends on:
 *
 *  - EventFn: a small-buffer type-erased `void()` callable. The
 *    scheduler's callbacks are almost all tiny resume lambdas
 *    (`[h] { h.resume(); }`); EventFn stores anything up to
 *    kInlineBytes inline in the event node, so the fast path performs
 *    zero heap allocations per event (std::function allocated one).
 *    Larger or throwing-move callables transparently fall back to a
 *    single heap cell.
 *
 *  - TimerHandle + EventPool: slab-allocated event nodes recycled
 *    through a free list. A handle names a node by (pool index,
 *    generation); the generation is bumped every time a node is
 *    recycled, so a stale handle — one whose event already fired — can
 *    never cancel an unrelated reused node, and cancelling it twice is
 *    a no-op. This replaces the old lazy-delete `cancelled_` id set,
 *    which grew without bound when callers cancelled already-fired
 *    timers.
 *
 *  - TimerWheel: a hierarchical timing wheel (Linux kernel/time/timer.c
 *    and FreeBSD callout-wheel lineage): kLevels levels of kSlots
 *    slots, level l spanning 64^(l+1) ns. Unlike the kernel wheel, no
 *    rounding is permitted — events keep their exact nanosecond expiry
 *    and cascade toward level 0 as the wheel advances, so the executed
 *    schedule is exactly the (when, seq) order the old binary heap
 *    produced. Same-tick FIFO order is restored by a per-expiry sort
 *    on the unique monotonic sequence number: events landing in one
 *    level-0 slot all share the same tick, and a sort by seq is a
 *    total, input-independent order.
 *
 * Determinism contract (see DESIGN.md §"Simulator core"): for a fixed
 * program, the sequence of (when, seq) pairs executed is identical to
 * the seed scheduler's. Nothing in this file consults wall clocks,
 * addresses, or hashing.
 */
#ifndef NASD_SIM_EVENT_QUEUE_H_
#define NASD_SIM_EVENT_QUEUE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.h"
#include "util/logging.h"

namespace nasd::sim {

/**
 * Small-buffer type-erased `void()` callable for event nodes.
 *
 * Callables that fit kInlineBytes and are nothrow-move-constructible
 * live inline in the node; anything else is boxed in one heap cell.
 * Move-only (an EventFn is consumed exactly once by the event loop).
 */
class EventFn
{
  public:
    /** Inline capacity: covers every scheduler callback in the tree
     *  (resume lambdas, RPC deadline closures, copied std::function
     *  objects) without touching the allocator. */
    static constexpr std::size_t kInlineBytes = 48;

    EventFn() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventFn> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    EventFn(F &&f) // NOLINT(google-explicit-constructor): converting
                   // ctor is the point — call sites pass raw lambdas
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= kInlineBytes &&
                      alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(f));
            ops_ = &inlineOps<Fn>;
        } else {
            ::new (static_cast<void *>(buf_))
                Fn *(new Fn(std::forward<F>(f)));
            ops_ = &boxedOps<Fn>;
        }
    }

    EventFn(EventFn &&other) noexcept : ops_(other.ops_)
    {
        if (ops_ != nullptr) {
            ops_->relocate(other.buf_, buf_);
            other.ops_ = nullptr;
        }
    }

    EventFn &
    operator=(EventFn &&other) noexcept
    {
        if (this != &other) {
            reset();
            ops_ = other.ops_;
            if (ops_ != nullptr) {
                ops_->relocate(other.buf_, buf_);
                other.ops_ = nullptr;
            }
        }
        return *this;
    }

    EventFn(const EventFn &) = delete;
    EventFn &operator=(const EventFn &) = delete;

    ~EventFn() { reset(); }

    void
    operator()()
    {
        NASD_ASSERT(ops_ != nullptr, "invoking an empty EventFn");
        ops_->invoke(buf_);
    }

    explicit operator bool() const { return ops_ != nullptr; }

    /** Destroy the held callable without invoking it. */
    void
    reset()
    {
        if (auto *ops = std::exchange(ops_, nullptr))
            ops->destroy(buf_);
    }

  private:
    struct Ops
    {
        void (*invoke)(void *);
        void (*relocate)(void *src, void *dst) noexcept;
        void (*destroy)(void *) noexcept;
    };

    template <typename Fn>
    static void
    inlineInvoke(void *p)
    {
        (*std::launder(reinterpret_cast<Fn *>(p)))();
    }

    template <typename Fn>
    static void
    inlineRelocate(void *src, void *dst) noexcept
    {
        Fn *from = std::launder(reinterpret_cast<Fn *>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
    }

    template <typename Fn>
    static void
    inlineDestroy(void *p) noexcept
    {
        std::launder(reinterpret_cast<Fn *>(p))->~Fn();
    }

    template <typename Fn>
    static void
    boxedInvoke(void *p)
    {
        (**std::launder(reinterpret_cast<Fn **>(p)))();
    }

    template <typename Fn>
    static void
    boxedRelocate(void *src, void *dst) noexcept
    {
        Fn **from = std::launder(reinterpret_cast<Fn **>(src));
        ::new (dst) Fn *(*from);
    }

    template <typename Fn>
    static void
    boxedDestroy(void *p) noexcept
    {
        delete *std::launder(reinterpret_cast<Fn **>(p));
    }

    template <typename Fn>
    static constexpr Ops inlineOps{&inlineInvoke<Fn>, &inlineRelocate<Fn>,
                                   &inlineDestroy<Fn>};
    template <typename Fn>
    static constexpr Ops boxedOps{&boxedInvoke<Fn>, &boxedRelocate<Fn>,
                                  &boxedDestroy<Fn>};

    alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
    const Ops *ops_ = nullptr;
};

/**
 * Names one pending cancelable event by pool slot + generation.
 *
 * Lifetime rules: the handle is valid from scheduleCancelable() until
 * the event fires or is cancelled. Cancelling after either point is a
 * harmless no-op — the generation stored in the handle no longer
 * matches the (recycled) node — so callers need no "already fired"
 * bookkeeping of their own. A handle never dangles and is never
 * reused for a different event.
 */
struct TimerHandle
{
    static constexpr std::uint32_t kInvalidIndex = ~std::uint32_t{0};

    std::uint32_t index = kInvalidIndex;
    std::uint32_t generation = 0;

    bool valid() const { return index != kInvalidIndex; }
};

/** One pending event: intrusive slot-chain link + inline callback. */
struct EventNode
{
    Tick when = 0;
    std::uint64_t seq = 0;
    EventNode *next = nullptr; ///< slot chain / free-list link
    std::uint32_t index = 0;   ///< own slot in the pool
    std::uint32_t generation = 0;
    bool cancelled = false;
    EventFn fn;
};

/**
 * Slab allocator for EventNodes: fixed-size chunks, pointer-stable,
 * LIFO free list. Recycling bumps the node's generation, invalidating
 * every outstanding TimerHandle to it in O(1).
 */
class EventPool
{
  public:
    static constexpr std::size_t kChunkNodes = 256;

    EventNode *
    allocate()
    {
        if (free_ == nullptr)
            grow();
        EventNode *n = free_;
        free_ = n->next;
        n->next = nullptr;
        n->cancelled = false;
        return n;
    }

    /** Return @p n to the free list; its generation is bumped so any
     *  handle still naming it goes stale. */
    void
    recycle(EventNode *n)
    {
        n->fn.reset();
        ++n->generation;
        n->next = free_;
        free_ = n;
    }

    /** The node at @p index (valid or recycled). */
    EventNode &
    at(std::uint32_t index)
    {
        return chunks_[index / kChunkNodes][index % kChunkNodes];
    }

    std::uint32_t allocatedNodes() const
    {
        return static_cast<std::uint32_t>(chunks_.size() * kChunkNodes);
    }

  private:
    void
    grow()
    {
        const auto base =
            static_cast<std::uint32_t>(chunks_.size() * kChunkNodes);
        chunks_.push_back(std::make_unique<EventNode[]>(kChunkNodes));
        EventNode *chunk = chunks_.back().get();
        // Thread the new chunk onto the free list in index order so
        // allocation order (and thus nothing at all — indices never
        // leak into event ordering) stays reproducible.
        for (std::size_t i = kChunkNodes; i-- > 0;) {
            chunk[i].index = base + static_cast<std::uint32_t>(i);
            chunk[i].next = free_;
            free_ = &chunk[i];
        }
    }

    std::vector<std::unique_ptr<EventNode[]>> chunks_;
    EventNode *free_ = nullptr;
};

/**
 * Hierarchical timing wheel keyed on absolute ticks.
 *
 * Level l holds events whose expiry first diverges from the wheel's
 * base time in bit-group l (6 bits per level): level 0 spans the next
 * 64 ns, level 1 the next 4096 ns, ... 11 levels cover the full
 * 64-bit tick range. Advancing to the next expiry cascades the
 * nearest occupied slot downward until its events land in level 0 or
 * exactly on the new base; per-level occupancy bitmaps make "find
 * next occupied slot" a count-trailing-zeros, never a scan.
 *
 * The drain order contract: popNext() yields events in strictly
 * nondecreasing (when, seq) order, bit-identical to a binary heap
 * ordered the same way. Cancelled nodes stay queued (they gate
 * runUntil() exactly like live ones, preserving the seed scheduler's
 * run-until-empty semantics) and are skipped by the caller on pop.
 */
class TimerWheel
{
  public:
    static constexpr std::size_t kLevelBits = 6;
    static constexpr std::size_t kSlots = 1u << kLevelBits; // 64
    static constexpr std::size_t kLevels = 11; // 66 bits >= 64-bit Tick

    TimerWheel() { slots_.fill(nullptr); }

    TimerWheel(const TimerWheel &) = delete;
    TimerWheel &operator=(const TimerWheel &) = delete;

    ~TimerWheel();

    /** Total queued nodes, cancelled ones included. */
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /**
     * Queue @p fn at absolute tick @p when (>= base). @p cancelable
     * events get a live TimerHandle; others an invalid one (callers
     * of plain schedule() never cancel).
     */
    TimerHandle push(Tick when, std::uint64_t seq, EventFn fn,
                     bool cancelable);

    /**
     * Cancel the event named by @p h. O(1). A stale handle — already
     * fired, already cancelled, or recycled — is a no-op, so callers
     * may cancel unconditionally.
     * @return true if a pending event was actually cancelled.
     */
    bool cancel(const TimerHandle &h);

    /**
     * Expiry of the next event (cancelled or not). Requires !empty().
     *
     * Non-mutating: peeking never cascades. This matters for the
     * base-time invariant — the wheel's base only moves forward in
     * popNext(), whose caller is committed to consuming that event,
     * so between run/runUntil calls `base_ <= now` always holds and
     * new events may be scheduled at any tick >= now.
     */
    Tick nextTime();

    /** Remove and return the next event in (when, seq) order.
     *  Requires !empty(). Caller recycles the node via recycle(). */
    EventNode *popNext();

    /** Return a popped node to the pool (invalidates its handles). */
    void
    recycle(EventNode *n)
    {
        pool_.recycle(n);
    }

  private:
    /** Fill batch_ with the earliest expiry's events, seq-sorted. */
    void advance();

    void insert(EventNode *n);

    std::size_t
    slotIndex(std::size_t level, Tick when) const
    {
        return (when >> (kLevelBits * level)) & (kSlots - 1);
    }

    EventNode *&
    slot(std::size_t level, std::size_t idx)
    {
        return slots_[level * kSlots + idx];
    }

    EventPool pool_;
    std::array<EventNode *, kLevels * kSlots> slots_{};
    std::array<std::uint64_t, kLevels> occupancy_{};
    Tick base_ = 0;       ///< wheel reference time (last expiry served)
    std::size_t size_ = 0;

    // Events expiring exactly at base_, in seq order. Vector-as-ring:
    // batch_[batch_head_..] are pending; fully drained -> cleared.
    std::vector<EventNode *> batch_;
    std::size_t batch_head_ = 0;

    // Pre-base escape hatch. The wheel's base tracks the tick of the
    // event batch being served, which can run AHEAD of the caller's
    // clock when cancelled timers sit at the front (they are popped
    // without advancing the clock). An insert below base_ — legal, the
    // contract is only when >= now — lands in this (when, seq)
    // min-heap instead; every entry here precedes every batch/wheel
    // entry, so drain order stays exact. Empty in the common case.
    std::vector<EventNode *> early_;
};

} // namespace nasd::sim

#endif // NASD_SIM_EVENT_QUEUE_H_
