#include "sim/simulator.h"

#include <algorithm>

#include "util/logging.h"

namespace nasd::sim {

Simulator::~Simulator()
{
    // Destroy any still-suspended top-level processes. Their frames
    // unwind normally (locals are destroyed), but no further simulation
    // happens.
    for (auto h : roots_) {
        if (h)
            h.destroy();
    }
}

void
Simulator::schedule(Tick when, std::function<void()> fn)
{
    NASD_ASSERT(when >= now_, "scheduling into the past: ", when, " < ",
                now_);
    events_.push(PendingEvent{when, next_seq_++, std::move(fn)});
}

std::uint64_t
Simulator::scheduleCancelable(Tick when, std::function<void()> fn)
{
    NASD_ASSERT(when >= now_, "scheduling into the past: ", when, " < ",
                now_);
    const std::uint64_t id = next_seq_++;
    events_.push(PendingEvent{when, id, std::move(fn)});
    return id;
}

void
Simulator::spawn(Task<void> task)
{
    NASD_ASSERT(task.valid(), "spawning an empty task");
    auto h = task.release();
    roots_.push_back(h);
    h.resume(); // run to first suspension (or completion)
    sweepFinished();
}

bool
Simulator::executeNext()
{
    if (events_.empty())
        return false;
    // Move the event out before popping so the handler may schedule
    // more events (which mutates the heap).
    PendingEvent ev = std::move(const_cast<PendingEvent &>(events_.top()));
    events_.pop();
    NASD_ASSERT(ev.when >= now_, "event queue time went backwards");
    if (cancelled_.erase(ev.seq) > 0) {
        // Revoked timer: discard without touching the clock, so a
        // cancelled deadline never stretches a measured interval.
        // Single-step so runUntil() re-checks its deadline before the
        // next (possibly later) event runs.
        return true;
    }
    now_ = ev.when;
    last_event_time_ = ev.when;
    ++events_executed_;
    ev.fn();
    return true;
}

void
Simulator::run()
{
    while (executeNext()) {
    }
    sweepFinished();
}

bool
Simulator::runUntil(Tick deadline)
{
    while (!events_.empty() && events_.top().when <= deadline)
        executeNext();
    sweepFinished();
    if (now_ < deadline)
        now_ = deadline;
    return !events_.empty();
}

void
Simulator::sweepFinished()
{
    auto it = roots_.begin();
    while (it != roots_.end()) {
        auto h = *it;
        if (h && h.done()) {
            auto exc = h.promise().exception;
            h.destroy();
            it = roots_.erase(it);
            if (exc)
                std::rethrow_exception(exc);
        } else {
            ++it;
        }
    }
}

std::size_t
Simulator::liveProcesses() const
{
    return static_cast<std::size_t>(
        std::count_if(roots_.begin(), roots_.end(),
                      [](auto h) { return h && !h.done(); }));
}

} // namespace nasd::sim
