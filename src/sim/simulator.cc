#include "sim/simulator.h"

#include <exception>
#include <utility>

#include "util/logging.h"

namespace nasd::sim {

namespace detail {

void
rootFinished(Simulator &sim, PromiseBase &p) noexcept
{
    // Unlink from the live list (O(1) via the intrusive prev/next).
    if (p.root_prev != nullptr)
        p.root_prev->root_next = p.root_next;
    else
        sim.live_head_ = p.root_next;
    if (p.root_next != nullptr)
        p.root_next->root_prev = p.root_prev;
    p.root_prev = p.root_next = nullptr;
    --sim.live_count_;

    // Append to the finished FIFO for the next sweepFinished().
    if (sim.finished_tail_ != nullptr)
        sim.finished_tail_->root_next = &p;
    else
        sim.finished_head_ = &p;
    sim.finished_tail_ = &p;
}

} // namespace detail

Simulator::~Simulator()
{
    // Destroy any still-suspended top-level processes. Their frames
    // unwind normally (locals are destroyed), but no further simulation
    // happens. Finished-but-unswept frames are reclaimed too; their
    // stored exceptions die with them.
    detail::PromiseBase *p = live_head_;
    while (p != nullptr) {
        detail::PromiseBase *next = p->root_next;
        p->root_handle.destroy();
        p = next;
    }
    p = finished_head_;
    while (p != nullptr) {
        detail::PromiseBase *next = p->root_next;
        p->root_handle.destroy();
        p = next;
    }
}

void
Simulator::spawn(Task<void> task)
{
    NASD_ASSERT(task.valid(), "spawning an empty task");
    auto h = task.release();
    detail::PromiseBase &p = h.promise();
    p.root_owner = this;
    p.root_handle = h;
    p.root_next = live_head_;
    if (live_head_ != nullptr)
        live_head_->root_prev = &p;
    live_head_ = &p;
    ++live_count_;
    h.resume(); // run to first suspension (or completion)
    sweepFinished();
}

bool
Simulator::executeNext()
{
    if (wheel_.empty())
        return false;
    EventNode *node = wheel_.popNext();
    NASD_ASSERT(node->when >= now_, "event queue time went backwards");
    if (node->cancelled) {
        // Revoked timer: discard without touching the clock, so a
        // cancelled deadline never stretches a measured interval.
        // Single-step so runUntil() re-checks its deadline before the
        // next (possibly later) event runs.
        wheel_.recycle(node);
        return true;
    }
    // Move the callback out and recycle the node *before* invoking:
    // the handler may schedule new events (reusing this very node),
    // and any handle to this event must already read as fired.
    EventFn fn = std::move(node->fn);
    const Tick when = node->when;
    wheel_.recycle(node);
    now_ = when;
    last_event_time_ = when;
    ++events_executed_;
    ++total_events_;
    fn();
    return true;
}

void
Simulator::run()
{
    while (executeNext()) {
    }
    sweepFinished();
}

bool
Simulator::runUntil(Tick deadline)
{
    while (!wheel_.empty() && wheel_.nextTime() <= deadline)
        executeNext();
    sweepFinished();
    if (now_ < deadline)
        now_ = deadline;
    return !wheel_.empty();
}

void
Simulator::sweepFinished()
{
    // Detach the whole finished FIFO first: destroying a frame runs
    // destructors that could in principle spawn (and finish) further
    // processes, which would append to the list mid-walk.
    detail::PromiseBase *p = std::exchange(finished_head_, nullptr);
    finished_tail_ = nullptr;

    // Destroy every finished frame before rethrowing, so one failing
    // process can no longer leak its siblings' frames for this sweep
    // (the seed implementation rethrew mid-iteration).
    std::exception_ptr first_exception;
    while (p != nullptr) {
        detail::PromiseBase *next = p->root_next;
        if (!first_exception && p->exception)
            first_exception = p->exception;
        p->root_handle.destroy();
        p = next;
    }
    if (first_exception)
        std::rethrow_exception(first_exception);
}

} // namespace nasd::sim
