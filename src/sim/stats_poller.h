/**
 * @file
 * Fixed-interval metrics sampler driving the simulator.
 *
 * A StatsPoller replaces a bench's plain sim.run(): it steps the
 * simulator runUntil() one interval at a time and appends one sample
 * per probe per interval into a util::TimeSeries. Rate probes read a
 * cumulative value (a counter, busy-time) and emit its per-second
 * delta over the interval; gauge probes read an instantaneous value
 * (queue depth) at the interval boundary.
 *
 * Stepping the clock to interval boundaries does not perturb the
 * simulation (events keep their scheduled times and order), but it
 * does round the final clock value up — measure elapsed time with
 * Simulator::lastEventTime(), which is identical to what a plain
 * run() would have reported.
 */
#ifndef NASD_SIM_STATS_POLLER_H_
#define NASD_SIM_STATS_POLLER_H_

#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "sim/time.h"
#include "util/timeseries.h"

namespace nasd::sim {

class StatsPoller
{
  public:
    /** Samples into @p out every @p interval ticks of sim time. */
    StatsPoller(Simulator &sim, util::TimeSeries &out, Tick interval);

    /**
     * Rate probe: each interval emits
     *   (cumulative() - previous) / interval_seconds * scale.
     * E.g. a byte counter with scale 1e-6 yields MB/s; a busy-ns
     * accumulator with scale 1e-9 yields utilization in [0, 1].
     */
    void addRate(const std::string &name,
                 std::function<double()> cumulative, double scale);

    /** Gauge probe: each interval emits value() at the boundary. */
    void addGauge(const std::string &name, std::function<double()> value);

    /**
     * Fleet-percentile probe: each interval emits percentile @p p of
     * the merged fleet latency histogram for rollup group @p group
     * (e.g. "nasd/read" — see util::FleetRollup), scaled by @p scale
     * (1e-6 turns ns into ms). The merge is exact and cumulative: the
     * sample at each boundary covers every op recorded so far, so the
     * series shows the fleet tail converging (or a straggler dragging
     * it). Reads the ambient metrics registry at sample time.
     */
    void addFleetPercentile(const std::string &name,
                            const std::string &group, double p,
                            double scale);

    /**
     * Drive the simulator to completion (like sim.run()), sampling
     * every probe at each interval boundary.
     */
    void run();

  private:
    struct Probe
    {
        std::size_t column;
        bool is_rate;
        double scale;
        std::function<double()> read;
        double last = 0.0;
    };

    void sample();

    Simulator &sim_;
    util::TimeSeries &out_;
    Tick interval_;
    std::vector<Probe> probes_;
};

} // namespace nasd::sim

#endif // NASD_SIM_STATS_POLLER_H_
