/**
 * @file
 * Queued CPU resource.
 *
 * CpuResource models one processor (a client CPU, a server CPU, or the
 * drive's embedded controller) as a single FIFO server. Work is
 * expressed in instructions; the MHz/CPI pair converts instructions to
 * simulated time, exactly the arithmetic the paper uses to project its
 * Alpha instruction counts onto a 200 MHz drive controller (Table 1).
 */
#ifndef NASD_SIM_RESOURCE_H_
#define NASD_SIM_RESOURCE_H_

#include <algorithm>
#include <cstdint>
#include <string>

#include "sim/simulator.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "sim/time.h"
#include "util/attribution.h"
#include "util/metrics.h"
#include "util/stats.h"

namespace nasd::sim {

/** A single-server FIFO CPU with instruction-based service times. */
class CpuResource
{
  public:
    /**
     * @param sim Owning simulator.
     * @param name For diagnostics.
     * @param mhz Clock rate in MHz.
     * @param cpi Average cycles per instruction.
     */
    CpuResource(Simulator &sim, std::string name, double mhz, double cpi)
        : sim_(sim), name_(std::move(name)),
          metric_prefix_(util::metrics().uniquePrefix(metricStem(name_))),
          mhz_(mhz), cpi_(cpi), server_(sim, 1),
          instructions_(
              util::metrics().counter(metric_prefix_ + "/instructions")),
          wait_ns_(util::metrics().counter(metric_prefix_ + "/wait_ns")),
          service_ns_(
              util::metrics().counter(metric_prefix_ + "/service_ns"))
    {
        NASD_ASSERT(mhz > 0 && cpi > 0);
    }

    /** Service time for @p instructions at this CPU's MHz and CPI. */
    Tick
    timeFor(std::uint64_t instructions) const
    {
        const double cycles = static_cast<double>(instructions) * cpi_;
        const double ns = cycles * 1000.0 / mhz_;
        return static_cast<Tick>(ns);
    }

    /** Queue for the CPU and burn @p instructions of work on it.
     *  When @p attr is set, the queue wait and the service time are
     *  charged to its kCpu class. */
    Task<void>
    execute(std::uint64_t instructions, util::OpAttribution *attr = nullptr)
    {
        co_await occupy(timeFor(instructions), attr);
        instructions_.add(instructions);
    }

    /**
     * Like execute(), but at an explicit CPI. Used for per-byte data
     * paths (copies, checksums) whose CPI is much worse than the
     * control path's.
     */
    Task<void>
    executeAt(std::uint64_t instructions, double cpi,
              util::OpAttribution *attr = nullptr)
    {
        const double cycles = static_cast<double>(instructions) * cpi;
        co_await occupy(static_cast<Tick>(cycles * 1000.0 / mhz_), attr);
        instructions_.add(instructions);
    }

    /** Queue for the CPU and hold it busy for @p duration ticks. */
    Task<void>
    occupy(Tick duration, util::OpAttribution *attr = nullptr)
    {
        const Tick wait = co_await timedAcquire(sim_, server_);
        wait_ns_.add(wait);
        service_ns_.add(duration);
        if (attr) {
            attr->addWait(util::ResourceClass::kCpu, wait);
            attr->addService(util::ResourceClass::kCpu, duration);
        }
        busy_.markBusy(sim_.now());
        co_await sim_.delay(duration);
        busy_.markIdle(sim_.now());
        server_.release();
    }

    /** Fraction of [start, end] this CPU was idle (Figure 7 curves). */
    double
    idleFraction(Tick start, Tick end) const
    {
        return 1.0 - busy_.utilization(start, end);
    }

    const std::string &name() const { return name_; }
    double mhz() const { return mhz_; }
    double cpi() const { return cpi_; }

    /** Metrics subtree for this CPU ("client0/cpu", "drive/cpu", ...). */
    const std::string &metricPrefix() const { return metric_prefix_; }

    std::uint64_t instructionsRetired() const
    {
        return instructions_.value();
    }

    /** Busy nanoseconds up to @p now, open interval included (for
     *  interval samplers computing utilization rates). */
    std::uint64_t busyNsUpTo(Tick now) const
    {
        return busy_.busyNsUpTo(now);
    }

    /** Requests currently queued behind the server. */
    std::size_t queueDepth() const { return server_.waiterCount(); }

  private:
    /** Metric path stem: the diagnostic name with '.' as a level split,
     *  so "client0.cpu" lands at "client0/cpu/...". */
    static std::string
    metricStem(const std::string &name)
    {
        std::string stem = name;
        std::replace(stem.begin(), stem.end(), '.', '/');
        return stem;
    }

    Simulator &sim_;
    std::string name_;
    std::string metric_prefix_;
    double mhz_;
    double cpi_;
    Semaphore server_;
    util::UtilizationTracker busy_;
    util::Counter &instructions_; ///< registry-backed retired-instr count
    util::Counter &wait_ns_;      ///< cumulative queue wait
    util::Counter &service_ns_;   ///< cumulative occupied time
};

} // namespace nasd::sim

#endif // NASD_SIM_RESOURCE_H_
