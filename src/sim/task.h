/**
 * @file
 * Coroutine task types for simulation processes.
 *
 * Simulation logic (clients, drives, file managers) is written as
 * C++20 coroutines returning Task<T>. A Task is lazy: it starts running
 * when awaited (or when handed to Simulator::spawn). Completion resumes
 * the awaiting coroutine via symmetric transfer, so deep call chains
 * cost no stack and no event-queue churn.
 *
 * Ownership: the Task object owns the coroutine frame and destroys it
 * when the Task goes out of scope. Top-level processes are kept alive by
 * the Simulator (see Simulator::spawn).
 */
#ifndef NASD_SIM_TASK_H_
#define NASD_SIM_TASK_H_

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "util/logging.h"

namespace nasd::sim {

template <typename T>
class Task;

class Simulator;

namespace detail {

struct PromiseBase;

/**
 * Called (from simulator.cc) at a root process's final suspension:
 * moves the promise from the simulator's live list to its finished
 * list so reclamation is O(finished), not a scan over all roots.
 */
void rootFinished(Simulator &sim, PromiseBase &promise) noexcept;

/** Behaviour shared by Task promises: continuation + symmetric finish. */
struct PromiseBase
{
    std::coroutine_handle<> continuation;

    struct FinalAwaiter
    {
        bool await_ready() const noexcept { return false; }

        template <typename Promise>
        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<Promise> h) const noexcept
        {
            PromiseBase &p = h.promise();
            if (p.continuation)
                return p.continuation;
            // No awaiter: this is a top-level process owned by the
            // simulator (Simulator::spawn). Hand the frame to its
            // finished list for the next sweep.
            if (p.root_owner != nullptr)
                rootFinished(*p.root_owner, p);
            return std::noop_coroutine();
        }

        void await_resume() const noexcept {}
    };

    std::suspend_always initial_suspend() noexcept { return {}; }
    FinalAwaiter final_suspend() noexcept { return {}; }

    void
    unhandled_exception()
    {
        exception = std::current_exception();
    }

    std::exception_ptr exception;

    // Intrusive hooks for Simulator's root-process lists. Set by
    // Simulator::spawn for top-level processes only; child tasks
    // awaited inside a process never touch them.
    Simulator *root_owner = nullptr;
    PromiseBase *root_prev = nullptr;
    PromiseBase *root_next = nullptr;
    std::coroutine_handle<> root_handle; ///< type-erased own frame
};

} // namespace detail

/**
 * A lazily-started coroutine returning a value of type T.
 *
 * Await it from another coroutine to run it to completion and obtain
 * the value. Tasks are move-only.
 */
template <typename T = void>
class [[nodiscard]] Task
{
  public:
    struct promise_type : detail::PromiseBase
    {
        std::optional<T> value;

        Task
        get_return_object()
        {
            return Task(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }

        void
        return_value(T v)
        {
            value.emplace(std::move(v));
        }
    };

    Task() = default;

    Task(Task &&other) noexcept : handle_(std::exchange(other.handle_, {}))
    {}

    Task &
    operator=(Task &&other) noexcept
    {
        if (this != &other) {
            destroy();
            handle_ = std::exchange(other.handle_, {});
        }
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    ~Task() { destroy(); }

    bool valid() const { return static_cast<bool>(handle_); }
    bool done() const { return handle_ && handle_.done(); }

    // Awaitable interface -------------------------------------------------

    bool await_ready() const { return !handle_ || handle_.done(); }

    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<> cont)
    {
        handle_.promise().continuation = cont;
        return handle_; // symmetric transfer: start the child now
    }

    T
    await_resume()
    {
        auto &p = handle_.promise();
        if (p.exception)
            std::rethrow_exception(p.exception);
        NASD_ASSERT(p.value.has_value(), "Task finished without a value");
        return std::move(*p.value);
    }

    /** Release ownership of the frame (used by Simulator::spawn). */
    std::coroutine_handle<promise_type>
    release()
    {
        return std::exchange(handle_, {});
    }

  private:
    explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}

    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = {};
        }
    }

    std::coroutine_handle<promise_type> handle_;
};

/** Task specialization for coroutines that produce no value. */
template <>
class [[nodiscard]] Task<void>
{
  public:
    struct promise_type : detail::PromiseBase
    {
        Task
        get_return_object()
        {
            return Task(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }

        void return_void() {}
    };

    Task() = default;

    Task(Task &&other) noexcept : handle_(std::exchange(other.handle_, {}))
    {}

    Task &
    operator=(Task &&other) noexcept
    {
        if (this != &other) {
            destroy();
            handle_ = std::exchange(other.handle_, {});
        }
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    ~Task() { destroy(); }

    bool valid() const { return static_cast<bool>(handle_); }
    bool done() const { return handle_ && handle_.done(); }

    bool await_ready() const { return !handle_ || handle_.done(); }

    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<> cont)
    {
        handle_.promise().continuation = cont;
        return handle_;
    }

    void
    await_resume()
    {
        if (handle_.promise().exception)
            std::rethrow_exception(handle_.promise().exception);
    }

    std::coroutine_handle<promise_type>
    release()
    {
        return std::exchange(handle_, {});
    }

  private:
    explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}

    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = {};
        }
    }

    std::coroutine_handle<promise_type> handle_;
};

} // namespace nasd::sim

#endif // NASD_SIM_TASK_H_
