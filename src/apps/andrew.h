/**
 * @file
 * An Andrew-benchmark-style workload [Howard88].
 *
 * The paper validates that NASD drives can serve a conventional
 * distributed filesystem "without performance loss" by running the
 * Andrew benchmark over NFS and NASD-NFS and finding the times within
 * 5% of each other. This module generates the same five-phase shape:
 *
 *   1. MakeDir  - create the directory tree
 *   2. Copy     - create and write every source file
 *   3. ScanDir  - stat every file (recursive directory scan)
 *   4. ReadAll  - read every byte of every file
 *   5. Make     - read sources, write derived objects (compile-like)
 *
 * over an abstract filesystem target so the identical workload runs on
 * the baseline NFS client and the NASD-NFS client.
 */
#ifndef NASD_APPS_ANDREW_H_
#define NASD_APPS_ANDREW_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/resource.h"
#include "sim/simulator.h"
#include "sim/task.h"
#include "util/rng.h"

namespace nasd::apps {

/** The filesystem operations the workload needs, path-addressed. */
class AndrewTarget
{
  public:
    virtual ~AndrewTarget() = default;

    virtual sim::Task<void> mkdir(const std::string &path) = 0;
    virtual sim::Task<void> createFile(const std::string &path) = 0;
    virtual sim::Task<void>
    writeFile(const std::string &path,
              std::span<const std::uint8_t> data) = 0;
    virtual sim::Task<std::uint64_t> fileSize(const std::string &path) = 0;
    virtual sim::Task<std::uint64_t>
    readFile(const std::string &path, std::span<std::uint8_t> out) = 0;
    virtual sim::Task<std::vector<std::string>>
    listDir(const std::string &path) = 0;
};

/** Workload shape (defaults approximate the original benchmark). */
struct AndrewParams
{
    std::uint32_t dirs = 4;
    std::uint32_t files_per_dir = 10;
    std::uint32_t mean_file_bytes = 16 * 1024;
    std::uint64_t seed = 7;

    /// Client CPU charged for the workload's own computation. The real
    /// Andrew benchmark is dominated by client work (the Make phase is
    /// a compile, ReadAll is a grep); without it, wire latency would
    /// dominate in a way the original benchmark never showed.
    sim::CpuResource *client_cpu = nullptr;
    std::uint64_t compile_instr_per_file = 20'000'000;
    double scan_instr_per_byte = 8.0; ///< ReadAll grep cost
};

/** Per-phase and total times, in simulated nanoseconds. */
struct AndrewReport
{
    sim::Tick make_dir = 0;
    sim::Tick copy = 0;
    sim::Tick scan_dir = 0;
    sim::Tick read_all = 0;
    sim::Tick make = 0;

    sim::Tick
    total() const
    {
        return make_dir + copy + scan_dir + read_all + make;
    }
};

/** Run the five phases against @p target. */
sim::Task<AndrewReport> runAndrew(sim::Simulator &sim, AndrewTarget &target,
                                  AndrewParams params = {});

} // namespace nasd::apps

#endif // NASD_APPS_ANDREW_H_
