#include "apps/andrew.h"

#include <span>

namespace nasd::apps {

namespace {

std::string
dirName(std::uint32_t d)
{
    return "dir" + std::to_string(d);
}

std::string
fileName(std::uint32_t d, std::uint32_t f)
{
    return dirName(d) + "/src" + std::to_string(f);
}

std::vector<std::uint8_t>
fileBytes(util::Rng &rng, std::uint32_t mean_bytes)
{
    // File sizes around the mean, at least 1 KB.
    const std::uint64_t size = 1024 + rng.below(2 * mean_bytes - 1024);
    std::vector<std::uint8_t> data(size);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.next());
    return data;
}

} // namespace

sim::Task<AndrewReport>
runAndrew(sim::Simulator &sim, AndrewTarget &target, AndrewParams params)
{
    AndrewReport report;
    util::Rng rng(params.seed);

    // Phase 1: MakeDir.
    sim::Tick start = sim.now();
    for (std::uint32_t d = 0; d < params.dirs; ++d)
        co_await target.mkdir(dirName(d));
    report.make_dir = sim.now() - start;

    // Phase 2: Copy (create + write all source files).
    start = sim.now();
    std::vector<std::vector<std::uint8_t>> contents;
    for (std::uint32_t d = 0; d < params.dirs; ++d) {
        for (std::uint32_t f = 0; f < params.files_per_dir; ++f) {
            const auto path = fileName(d, f);
            co_await target.createFile(path);
            contents.push_back(fileBytes(rng, params.mean_file_bytes));
            co_await target.writeFile(path, contents.back());
        }
    }
    report.copy = sim.now() - start;

    // Phase 3: ScanDir (list directories, stat every file).
    start = sim.now();
    for (std::uint32_t d = 0; d < params.dirs; ++d) {
        const auto names = co_await target.listDir(dirName(d));
        for (const auto &name : names)
            (void)co_await target.fileSize(dirName(d) + "/" + name);
    }
    report.scan_dir = sim.now() - start;

    // Phase 4: ReadAll (a grep over every byte).
    start = sim.now();
    std::vector<std::uint8_t> buffer;
    for (std::uint32_t d = 0; d < params.dirs; ++d) {
        for (std::uint32_t f = 0; f < params.files_per_dir; ++f) {
            const auto path = fileName(d, f);
            const std::uint64_t size = co_await target.fileSize(path);
            buffer.resize(size);
            (void)co_await target.readFile(path, buffer);
            if (params.client_cpu != nullptr) {
                co_await params.client_cpu->execute(
                    static_cast<std::uint64_t>(params.scan_instr_per_byte *
                                               static_cast<double>(size)));
            }
        }
    }
    report.read_all = sim.now() - start;

    // Phase 5: Make (read each source, write a derived object of
    // roughly half the size).
    start = sim.now();
    std::size_t index = 0;
    for (std::uint32_t d = 0; d < params.dirs; ++d) {
        for (std::uint32_t f = 0; f < params.files_per_dir; ++f) {
            const auto src = fileName(d, f);
            const std::uint64_t size = co_await target.fileSize(src);
            buffer.resize(size);
            (void)co_await target.readFile(src, buffer);

            if (params.client_cpu != nullptr)
                co_await params.client_cpu->execute(
                    params.compile_instr_per_file);

            const auto obj = dirName(d) + "/obj" + std::to_string(f);
            co_await target.createFile(obj);
            const std::size_t obj_size = contents[index].size() / 2;
            co_await target.writeFile(
                obj, std::span<const std::uint8_t>(contents[index].data(),
                                                   obj_size));
            ++index;
        }
    }
    report.make = sim.now() - start;

    co_return report;
}

} // namespace nasd::apps
