/**
 * @file
 * Frequent-itemset mining (Apriori [Agrawal94]), the paper's driving
 * parallel application (Section 5.2, Figure 9).
 *
 * The goal is rules like "if a customer purchases milk and eggs, they
 * are also likely to purchase bread". The algorithm makes full scans
 * over the data: pass 1 counts single items (the most I/O-bound phase,
 * the one Figure 9 measures), then each pass k counts candidate
 * k-itemsets built from the frequent (k-1)-itemsets.
 *
 * The counting kernels are pure functions over record buffers so the
 * same code runs at clients (NASD PFS), at an NFS client, or inside
 * the drives (Active Disks).
 */
#ifndef NASD_APPS_FREQUENT_SETS_H_
#define NASD_APPS_FREQUENT_SETS_H_

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "apps/transactions.h"

namespace nasd::apps {

/** A sorted set of item ids. */
using ItemSet = std::vector<std::uint32_t>;

/** Counts per single item, indexed by item id. */
using ItemCounts = std::vector<std::uint64_t>;

/** CPU cost of the counting kernel, charged by drivers per byte
 *  scanned (calibrated so a 233 MHz client overlaps compute with its
 *  ~6 MB/s of arriving data, as the paper's 4-producer/1-consumer
 *  threading achieved). */
inline constexpr double kCountingCyclesPerByte = 4.0;

/**
 * Pass 1: count item occurrences in a buffer of records.
 * @param data Whole chunks (multiple of the record size).
 * @param catalog_items Item-id space bound.
 */
ItemCounts countOneItemsets(std::span<const std::uint8_t> data,
                            std::uint32_t catalog_items);

/** Merge partial counts (master-side aggregation). */
void mergeCounts(ItemCounts &into, const ItemCounts &from);

/** Items whose count meets @p min_support. */
std::vector<std::uint32_t> frequentItems(const ItemCounts &counts,
                                         std::uint64_t min_support);

/**
 * Candidate generation: join frequent (k-1)-itemsets sharing a k-2
 * prefix, prune candidates with an infrequent subset (classic
 * Apriori).
 */
std::vector<ItemSet>
generateCandidates(const std::vector<ItemSet> &frequent_prev);

/**
 * Pass k: count how many transactions contain each candidate
 * (subset test per record). Returns counts parallel to @p candidates.
 */
std::vector<std::uint64_t>
countCandidates(std::span<const std::uint8_t> data,
                const std::vector<ItemSet> &candidates);

/** Candidates meeting @p min_support. */
std::vector<ItemSet>
frequentSets(const std::vector<ItemSet> &candidates,
             const std::vector<std::uint64_t> &counts,
             std::uint64_t min_support);

} // namespace nasd::apps

#endif // NASD_APPS_FREQUENT_SETS_H_
