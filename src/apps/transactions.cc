#include "apps/transactions.h"

#include <algorithm>

#include "util/codec.h"
#include "util/logging.h"

namespace nasd::apps {

void
encodeRecord(const TransactionRecord &record, std::span<std::uint8_t> out)
{
    NASD_ASSERT(out.size() >= TransactionRecord::kBytes);
    std::vector<std::uint8_t> buf;
    util::Encoder enc(buf);
    enc.put<std::uint64_t>(record.txn_id);
    enc.put<std::uint32_t>(record.store_id);
    enc.put<std::uint8_t>(record.item_count);
    for (std::size_t i = 0; i < TransactionRecord::kMaxItems; ++i)
        enc.put<std::uint32_t>(record.items[i]);
    enc.padTo(TransactionRecord::kBytes);
    std::copy(buf.begin(), buf.end(), out.begin());
}

TransactionRecord
decodeRecord(std::span<const std::uint8_t> in)
{
    NASD_ASSERT(in.size() >= TransactionRecord::kBytes);
    util::Decoder dec(in);
    TransactionRecord record;
    record.txn_id = dec.get<std::uint64_t>();
    record.store_id = dec.get<std::uint32_t>();
    record.item_count = dec.get<std::uint8_t>();
    for (std::size_t i = 0; i < TransactionRecord::kMaxItems; ++i)
        record.items[i] = dec.get<std::uint32_t>();
    return record;
}

TransactionGenerator::TransactionGenerator(DatasetParams params)
    : params_(params), zipf_(params.catalog_items, params.zipf_theta)
{
    NASD_ASSERT(params_.max_items <= TransactionRecord::kMaxItems);
    NASD_ASSERT(params_.min_items >= 2);
    NASD_ASSERT(params_.catalog_items >= 8);
}

std::vector<std::uint8_t>
TransactionGenerator::chunk(std::uint64_t index) const
{
    // Seed per chunk so chunks are independently regenerable.
    util::Rng rng(params_.seed * 0x9e3779b9ull + index);
    std::vector<std::uint8_t> out(kChunkBytes);

    for (std::uint64_t r = 0; r < kRecordsPerChunk; ++r) {
        TransactionRecord record;
        record.txn_id = index * kRecordsPerChunk + r;
        record.store_id = static_cast<std::uint32_t>(rng.below(100));
        const auto n = static_cast<std::uint8_t>(
            rng.between(params_.min_items, params_.max_items));
        record.item_count = n;

        std::size_t filled = 0;
        if (rng.chance(params_.planted_pair_rate) && n >= 2) {
            record.items[filled++] = 1;
            record.items[filled++] = 2;
        }
        while (filled < n) {
            record.items[filled++] =
                static_cast<std::uint32_t>(zipf_.sample(rng));
        }
        encodeRecord(record,
                     std::span<std::uint8_t>(
                         out.data() + r * TransactionRecord::kBytes,
                         TransactionRecord::kBytes));
    }
    return out;
}

} // namespace nasd::apps
