#include "apps/frequent_sets.h"

#include <algorithm>

#include "util/logging.h"

namespace nasd::apps {

ItemCounts
countOneItemsets(std::span<const std::uint8_t> data,
                 std::uint32_t catalog_items)
{
    ItemCounts counts(catalog_items, 0);
    const std::size_t n_records = data.size() / TransactionRecord::kBytes;
    for (std::size_t r = 0; r < n_records; ++r) {
        const auto record = decodeRecord(
            data.subspan(r * TransactionRecord::kBytes,
                         TransactionRecord::kBytes));
        for (std::uint8_t i = 0; i < record.item_count; ++i) {
            if (record.items[i] < catalog_items)
                ++counts[record.items[i]];
        }
    }
    return counts;
}

void
mergeCounts(ItemCounts &into, const ItemCounts &from)
{
    NASD_ASSERT(into.size() == from.size());
    for (std::size_t i = 0; i < into.size(); ++i)
        into[i] += from[i];
}

std::vector<std::uint32_t>
frequentItems(const ItemCounts &counts, std::uint64_t min_support)
{
    std::vector<std::uint32_t> items;
    for (std::uint32_t i = 0; i < counts.size(); ++i) {
        if (counts[i] >= min_support)
            items.push_back(i);
    }
    return items;
}

namespace {

/** Is @p subset (sorted) contained in @p superset (sorted)? */
bool
containsSorted(const ItemSet &superset, const ItemSet &subset)
{
    return std::includes(superset.begin(), superset.end(), subset.begin(),
                         subset.end());
}

} // namespace

std::vector<ItemSet>
generateCandidates(const std::vector<ItemSet> &frequent_prev)
{
    std::vector<ItemSet> candidates;
    if (frequent_prev.empty())
        return candidates;
    const std::size_t k_minus_1 = frequent_prev[0].size();

    // Join: pairs sharing the first k-2 items.
    for (std::size_t a = 0; a < frequent_prev.size(); ++a) {
        for (std::size_t b = a + 1; b < frequent_prev.size(); ++b) {
            const ItemSet &x = frequent_prev[a];
            const ItemSet &y = frequent_prev[b];
            if (!std::equal(x.begin(), x.end() - 1, y.begin()))
                continue;
            ItemSet candidate(x);
            candidate.push_back(y.back());
            std::sort(candidate.begin(), candidate.end());

            // Prune: every (k-1)-subset must be frequent.
            bool all_frequent = true;
            for (std::size_t drop = 0;
                 all_frequent && drop < candidate.size(); ++drop) {
                ItemSet subset;
                for (std::size_t i = 0; i < candidate.size(); ++i) {
                    if (i != drop)
                        subset.push_back(candidate[i]);
                }
                all_frequent =
                    std::find(frequent_prev.begin(), frequent_prev.end(),
                              subset) != frequent_prev.end();
            }
            if (all_frequent)
                candidates.push_back(std::move(candidate));
        }
    }
    (void)k_minus_1;
    return candidates;
}

std::vector<std::uint64_t>
countCandidates(std::span<const std::uint8_t> data,
                const std::vector<ItemSet> &candidates)
{
    std::vector<std::uint64_t> counts(candidates.size(), 0);
    const std::size_t n_records = data.size() / TransactionRecord::kBytes;
    for (std::size_t r = 0; r < n_records; ++r) {
        const auto record = decodeRecord(
            data.subspan(r * TransactionRecord::kBytes,
                         TransactionRecord::kBytes));
        if (record.item_count == 0)
            continue;
        ItemSet basket(record.items, record.items + record.item_count);
        std::sort(basket.begin(), basket.end());
        basket.erase(std::unique(basket.begin(), basket.end()),
                     basket.end());
        for (std::size_t c = 0; c < candidates.size(); ++c) {
            if (containsSorted(basket, candidates[c]))
                ++counts[c];
        }
    }
    return counts;
}

std::vector<ItemSet>
frequentSets(const std::vector<ItemSet> &candidates,
             const std::vector<std::uint64_t> &counts,
             std::uint64_t min_support)
{
    NASD_ASSERT(candidates.size() == counts.size());
    std::vector<ItemSet> result;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (counts[i] >= min_support)
            result.push_back(candidates[i]);
    }
    return result;
}

} // namespace nasd::apps
