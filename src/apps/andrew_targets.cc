#include "apps/andrew_targets.h"

#include "util/logging.h"

namespace nasd::apps {

namespace {

/** Split "a/b/c" into ("a/b", "c"); no leading slash expected. */
std::pair<std::string, std::string>
splitLeaf(const std::string &path)
{
    const auto pos = path.rfind('/');
    if (pos == std::string::npos)
        return {"", path};
    return {path.substr(0, pos), path.substr(pos + 1)};
}

} // namespace

// ----------------------------------------------------------- baseline NFS

sim::Task<fs::NfsFileHandle>
NfsAndrewTarget::handleOf(const std::string &path)
{
    const fs::NfsFileHandle base =
        root_.value_or(fs::NfsFileHandle{volume_, fs::kRootInode});
    if (path.empty())
        co_return base;
    const auto it = handle_cache_.find(path);
    if (it != handle_cache_.end())
        co_return it->second;
    // Walk components from the (possibly private) root.
    fs::NfsFileHandle current = base;
    std::size_t pos = 0;
    while (pos < path.size()) {
        const auto next = path.find('/', pos);
        const std::string part = path.substr(
            pos, next == std::string::npos ? path.size() - pos : next - pos);
        auto found = co_await client_.lookup(current, part);
        NASD_ASSERT(found.ok(), "lookup failed: ", path);
        current = found.value();
        pos = next == std::string::npos ? path.size() : next + 1;
    }
    handle_cache_[path] = current;
    co_return current;
}

sim::Task<std::pair<fs::NfsFileHandle, std::string>>
NfsAndrewTarget::splitPath(const std::string &path)
{
    const auto [dir, leaf] = splitLeaf(path);
    const auto handle = co_await handleOf(dir);
    co_return std::make_pair(handle, leaf);
}

sim::Task<void>
NfsAndrewTarget::mkdir(const std::string &path)
{
    auto [dir, leaf] = co_await splitPath(path);
    auto made = co_await client_.mkdir(dir, leaf);
    NASD_ASSERT(made.ok(), "mkdir failed: ", path);
    handle_cache_[path] = made.value();
}

sim::Task<void>
NfsAndrewTarget::createFile(const std::string &path)
{
    auto [dir, leaf] = co_await splitPath(path);
    auto made = co_await client_.create(dir, leaf);
    NASD_ASSERT(made.ok(), "create failed: ", path);
    handle_cache_[path] = made.value();
}

sim::Task<void>
NfsAndrewTarget::writeFile(const std::string &path,
                           std::span<const std::uint8_t> data)
{
    const auto handle = co_await handleOf(path);
    auto wrote = co_await client_.write(handle, 0, data);
    NASD_ASSERT(wrote.ok(), "write failed: ", path);
}

sim::Task<std::uint64_t>
NfsAndrewTarget::fileSize(const std::string &path)
{
    const auto handle = co_await handleOf(path);
    auto attrs = co_await client_.getattr(handle);
    NASD_ASSERT(attrs.ok(), "getattr failed: ", path);
    co_return attrs.value().size;
}

sim::Task<std::uint64_t>
NfsAndrewTarget::readFile(const std::string &path,
                          std::span<std::uint8_t> out)
{
    const auto handle = co_await handleOf(path);
    auto n = co_await client_.read(handle, 0, out);
    NASD_ASSERT(n.ok(), "read failed: ", path);
    co_return n.value();
}

sim::Task<std::vector<std::string>>
NfsAndrewTarget::listDir(const std::string &path)
{
    const auto handle = co_await handleOf(path);
    auto entries = co_await client_.readdir(handle);
    NASD_ASSERT(entries.ok(), "readdir failed: ", path);
    std::vector<std::string> names;
    for (const auto &e : entries.value())
        names.push_back(e.name);
    co_return names;
}

// ---------------------------------------------------------------- NASD-NFS

sim::Task<fs::NasdNfsFh>
NasdNfsAndrewTarget::handleOf(const std::string &path, bool want_write)
{
    if (path.empty())
        co_return root_;
    const auto it = handle_cache_.find(path);
    if (it != handle_cache_.end())
        co_return it->second;

    // Walk components from the root.
    fs::NasdNfsFh current = root_;
    std::size_t pos = 0;
    while (pos < path.size()) {
        const auto next = path.find('/', pos);
        const std::string part = path.substr(
            pos, next == std::string::npos ? path.size() - pos : next - pos);
        auto found = co_await client_.lookup(current, part, want_write);
        NASD_ASSERT(found.ok(), "lookup failed: ", path);
        current = found.value();
        pos = next == std::string::npos ? path.size() : next + 1;
    }
    handle_cache_[path] = current;
    co_return current;
}

sim::Task<std::pair<fs::NasdNfsFh, std::string>>
NasdNfsAndrewTarget::splitPath(const std::string &path)
{
    const auto [dir, leaf] = splitLeaf(path);
    const auto handle = co_await handleOf(dir, false);
    co_return std::make_pair(handle, leaf);
}

sim::Task<void>
NasdNfsAndrewTarget::mkdir(const std::string &path)
{
    auto [dir, leaf] = co_await splitPath(path);
    auto made = co_await client_.mkdir(dir, leaf);
    NASD_ASSERT(made.ok(), "mkdir failed: ", path);
    handle_cache_[path] = made.value();
}

sim::Task<void>
NasdNfsAndrewTarget::createFile(const std::string &path)
{
    auto [dir, leaf] = co_await splitPath(path);
    auto made = co_await client_.create(dir, leaf);
    NASD_ASSERT(made.ok(), "create failed: ", path);
    handle_cache_[path] = made.value();
}

sim::Task<void>
NasdNfsAndrewTarget::writeFile(const std::string &path,
                               std::span<const std::uint8_t> data)
{
    const auto handle = co_await handleOf(path, true);
    auto wrote = co_await client_.write(handle, 0, data);
    NASD_ASSERT(wrote.ok(), "write failed: ", path);
}

sim::Task<std::uint64_t>
NasdNfsAndrewTarget::fileSize(const std::string &path)
{
    const auto handle = co_await handleOf(path, false);
    auto attrs = co_await client_.getattr(handle);
    NASD_ASSERT(attrs.ok(), "getattr failed: ", path);
    co_return attrs.value().size;
}

sim::Task<std::uint64_t>
NasdNfsAndrewTarget::readFile(const std::string &path,
                              std::span<std::uint8_t> out)
{
    const auto handle = co_await handleOf(path, false);
    auto n = co_await client_.read(handle, 0, out);
    NASD_ASSERT(n.ok(), "read failed: ", path);
    co_return n.value();
}

sim::Task<std::vector<std::string>>
NasdNfsAndrewTarget::listDir(const std::string &path)
{
    const auto handle = co_await handleOf(path, false);
    auto entries = co_await client_.readdir(handle);
    NASD_ASSERT(entries.ok(), "readdir failed: ", path);
    std::vector<std::string> names;
    for (const auto &e : entries.value())
        names.push_back(e.name);
    co_return names;
}

} // namespace nasd::apps
