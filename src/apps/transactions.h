/**
 * @file
 * Synthetic retail sales transactions.
 *
 * Stands in for the 300 MB of sales records the paper mines
 * (Section 5.2). Records are fixed-size, items are drawn from a
 * heavy-tailed (Zipf) popularity distribution with planted frequent
 * pairs so association-rule mining has something to find, and records
 * never straddle the 2 MB chunk boundaries the parallel miner assigns
 * to clients.
 */
#ifndef NASD_APPS_TRANSACTIONS_H_
#define NASD_APPS_TRANSACTIONS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.h"

namespace nasd::apps {

/** Fixed on-disk record layout. */
struct TransactionRecord
{
    static constexpr std::size_t kMaxItems = 12;
    static constexpr std::size_t kBytes = 64;

    std::uint64_t txn_id = 0;
    std::uint32_t store_id = 0;
    std::uint8_t item_count = 0;
    std::uint32_t items[kMaxItems] = {};
};

/** The chunk unit the parallel miner distributes (2 MB). */
inline constexpr std::uint64_t kChunkBytes = 2 * 1024 * 1024;

/** Records per chunk (records never straddle chunks). */
inline constexpr std::uint64_t kRecordsPerChunk =
    kChunkBytes / TransactionRecord::kBytes;

/** Encode one record into exactly kBytes at @p out. */
void encodeRecord(const TransactionRecord &record,
                  std::span<std::uint8_t> out);

/** Decode one record from kBytes at @p in. */
TransactionRecord decodeRecord(std::span<const std::uint8_t> in);

/** Configuration of the synthetic dataset. */
struct DatasetParams
{
    std::uint32_t catalog_items = 1000; ///< distinct item ids
    double zipf_theta = 0.8;            ///< item popularity skew
    std::uint32_t min_items = 3;
    std::uint32_t max_items = TransactionRecord::kMaxItems;
    /// Probability a transaction contains the planted frequent pair
    /// (items 1 and 2), giving the miner a strong rule to discover.
    double planted_pair_rate = 0.25;
    std::uint64_t seed = 42;
};

/** Deterministic generator of transaction chunks. */
class TransactionGenerator
{
  public:
    explicit TransactionGenerator(DatasetParams params);

    /**
     * Generate chunk @p index (2 MB of records). Chunks are
     * independent: chunk data depends only on (seed, index), so any
     * client can regenerate any chunk for verification.
     */
    std::vector<std::uint8_t> chunk(std::uint64_t index) const;

    const DatasetParams &params() const { return params_; }

  private:
    DatasetParams params_;
    util::ZipfSampler zipf_;
};

} // namespace nasd::apps

#endif // NASD_APPS_TRANSACTIONS_H_
