/**
 * @file
 * AndrewTarget adapters for the baseline NFS client and the NASD-NFS
 * client, so the identical workload drives both systems (the paper's
 * within-5% comparison).
 */
#ifndef NASD_APPS_ANDREW_TARGETS_H_
#define NASD_APPS_ANDREW_TARGETS_H_

#include <map>
#include <optional>
#include <string>

#include "apps/andrew.h"
#include "fs/nfs/nasd_nfs.h"
#include "fs/nfs/nfs_client.h"

namespace nasd::apps {

/** Andrew workload over the baseline store-and-forward NFS. */
class NfsAndrewTarget : public AndrewTarget
{
  public:
    /** Paths resolve relative to @p root (a private subtree when
     *  several clients run the workload concurrently). */
    NfsAndrewTarget(fs::NfsClient &client, std::uint32_t volume,
                    std::optional<fs::NfsFileHandle> root = std::nullopt)
        : client_(client), volume_(volume), root_(root)
    {}

    sim::Task<void> mkdir(const std::string &path) override;
    sim::Task<void> createFile(const std::string &path) override;
    sim::Task<void>
    writeFile(const std::string &path,
              std::span<const std::uint8_t> data) override;
    sim::Task<std::uint64_t> fileSize(const std::string &path) override;
    sim::Task<std::uint64_t> readFile(const std::string &path,
                                      std::span<std::uint8_t> out) override;
    sim::Task<std::vector<std::string>>
    listDir(const std::string &path) override;

  private:
    /** Resolve @p path's parent directory handle and leaf name. */
    sim::Task<std::pair<fs::NfsFileHandle, std::string>>
    splitPath(const std::string &path);

    sim::Task<fs::NfsFileHandle> handleOf(const std::string &path);

    fs::NfsClient &client_;
    std::uint32_t volume_;
    std::optional<fs::NfsFileHandle> root_;
    std::map<std::string, fs::NfsFileHandle> handle_cache_;
};

/** Andrew workload over NASD-NFS (direct data path). */
class NasdNfsAndrewTarget : public AndrewTarget
{
  public:
    explicit NasdNfsAndrewTarget(fs::NasdNfsClient &client,
                                 fs::NasdNfsFh root)
        : client_(client), root_(root)
    {}

    sim::Task<void> mkdir(const std::string &path) override;
    sim::Task<void> createFile(const std::string &path) override;
    sim::Task<void>
    writeFile(const std::string &path,
              std::span<const std::uint8_t> data) override;
    sim::Task<std::uint64_t> fileSize(const std::string &path) override;
    sim::Task<std::uint64_t> readFile(const std::string &path,
                                      std::span<std::uint8_t> out) override;
    sim::Task<std::vector<std::string>>
    listDir(const std::string &path) override;

  private:
    sim::Task<std::pair<fs::NasdNfsFh, std::string>>
    splitPath(const std::string &path);

    sim::Task<fs::NasdNfsFh> handleOf(const std::string &path,
                                      bool want_write);

    fs::NasdNfsClient &client_;
    fs::NasdNfsFh root_;
    std::map<std::string, fs::NasdNfsFh> handle_cache_;
};

} // namespace nasd::apps

#endif // NASD_APPS_ANDREW_TARGETS_H_
