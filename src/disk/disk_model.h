/**
 * @file
 * Mechanical disk drive model.
 *
 * Simulates one late-90s disk drive: a seek curve calibrated to
 * track-to-track / average / full-stroke times, rotational position
 * derived deterministically from the simulated clock, media transfer at
 * the track rate, a segmented read cache with track readahead, and a
 * write-behind buffer that acknowledges writes at bus speed and drains
 * to media in the background.
 *
 * Data is real (a sparse byte store); only time is modeled. The model
 * reproduces the behaviours Figure 6 of the paper depends on:
 *  - single outstanding sequential reads see media and bus time in
 *    series (no overlap), ~2.5 MB/s per Medallist;
 *  - readahead makes small sequential reads stream near media rate;
 *  - write-behind acknowledges early, so apparent write bandwidth
 *    exceeds read bandwidth until the buffer fills.
 */
#ifndef NASD_DISK_DISK_MODEL_H_
#define NASD_DISK_DISK_MODEL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "disk/block_device.h"
#include "disk/params.h"
#include "sim/simulator.h"
#include "sim/sync.h"
#include "util/sparse_store.h"
#include "util/stats.h"

namespace nasd::disk {

/** Operation counters exposed for tests and benchmarks; each one is
 *  registry-backed under "<prefix>/..." in the current registry. */
struct DiskStats
{
    explicit DiskStats(const std::string &prefix);

    util::Counter &reads;
    util::Counter &writes;
    util::Counter &cache_hits;   ///< reads served entirely from cache
    util::Counter &cache_misses; ///< reads requiring media access
    util::Counter &media_blocks_read;
    util::Counter &media_blocks_written;
    util::Counter &seeks; ///< mechanical ops with nonzero cylinder motion

    // Latency attribution: cumulative queue-wait and service time on
    // the two internal resources (see DESIGN.md §9).
    util::Counter &bus_wait_ns;
    util::Counter &bus_service_ns;
    util::Counter &mech_wait_ns;
    util::Counter &mech_service_ns;
};

/** One simulated disk drive (see file comment). */
class DiskModel : public BlockDevice
{
  public:
    DiskModel(sim::Simulator &sim, DiskParams params);

    std::uint32_t blockSize() const override { return params_.block_size; }
    std::uint64_t numBlocks() const override { return params_.totalBlocks(); }

    sim::Task<void> read(std::uint64_t block, std::uint32_t count,
                         std::span<std::uint8_t> out,
                         util::OpAttribution *attr = nullptr) override;
    sim::Task<void> write(std::uint64_t block, std::uint32_t count,
                          std::span<const std::uint8_t> data,
                          util::OpAttribution *attr = nullptr) override;
    sim::Task<void> flush() override;

    void
    peek(std::uint64_t byte_offset,
         std::span<std::uint8_t> out) const override
    {
        data_.read(byte_offset, out);
    }

    void
    poke(std::uint64_t byte_offset,
         std::span<const std::uint8_t> data) override
    {
        data_.write(byte_offset, data);
    }

    const DiskParams &params() const { return params_; }
    const DiskStats &stats() const { return stats_; }

    /**
     * Fault injection: scale every mechanical service time (seek,
     * rotational wait, media transfer, write-behind drain) by
     * @p scale >= 1.0. Models a degrading spindle for straggler-
     * detection benches; 1.0 (the default) is byte-identical to the
     * unscaled model.
     */
    void setMechScale(double scale) { mech_scale_ = scale; }
    double mechScale() const { return mech_scale_; }

    /** Seek time between two cylinders (exposed for tests). */
    sim::Tick seekTime(std::uint64_t from_cyl, std::uint64_t to_cyl) const;

    /** Cylinder holding @p block. */
    std::uint64_t
    cylinderOf(std::uint64_t block) const
    {
        return block / (static_cast<std::uint64_t>(
                            params_.sectors_per_track) * params_.heads);
    }

  private:
    /**
     * One cached range of blocks [start, end). Blocks below sync_end
     * were read synchronously and are available at load_done; blocks
     * beyond arrive as readahead progresses at per_block ns each.
     */
    struct CacheSegment
    {
        bool valid = false;
        std::uint64_t start = 0;
        std::uint64_t end = 0;
        std::uint64_t sync_end = 0;
        sim::Tick load_done = 0;
        sim::Tick per_block = 0;
        sim::Tick last_use = 0;

        bool
        contains(std::uint64_t b) const
        {
            return valid && b >= start && b < end;
        }

        sim::Tick
        availableAt(std::uint64_t b) const
        {
            if (b < sync_end)
                return load_done;
            return load_done + (b - sync_end + 1) * per_block;
        }
    };

    /** Time to move @p count blocks to/from media starting at @p block,
     *  including seek and rotational positioning from the current
     *  simulated instant; updates arm position. */
    sim::Tick mechanicalTime(std::uint64_t block, std::uint32_t count);

    /** Per-block media transfer time (one sector time). */
    sim::Tick
    perBlockMediaTime() const
    {
        return static_cast<sim::Tick>(params_.rotationPeriodNs() /
                                      params_.sectors_per_track *
                                      mech_scale_);
    }

    /** Bus transfer time for @p bytes. */
    sim::Tick
    busTime(std::uint64_t bytes) const
    {
        const double bps = params_.bus_mb_per_s * 1024 * 1024;
        return static_cast<sim::Tick>(static_cast<double>(bytes) / bps *
                                      1e9);
    }

    /** Find the segment containing @p block, or nullptr. */
    CacheSegment *findSegment(std::uint64_t block);

    /** Abandon readahead not yet completed at the current instant. */
    void cancelPendingReadahead();

    /** Record a synchronous media read and schedule readahead after it. */
    void installSegment(std::uint64_t block, std::uint32_t count,
                        sim::Tick load_done);

    /** Drop cached data overlapping [block, block+count). */
    void invalidateRange(std::uint64_t block, std::uint32_t count);

    /** Record @p ns of queue wait on @p c into the drive counters and,
     *  when set, into @p attr (c is kDiskBus or kDiskMech). */
    void noteWait(util::ResourceClass c, sim::Tick ns,
                  util::OpAttribution *attr);

    /** Record @p ns of service time on @p c; see noteWait(). */
    void noteService(util::ResourceClass c, sim::Tick ns,
                     util::OpAttribution *attr);

    sim::Simulator &sim_;
    DiskParams params_;
    util::SparseStore data_;
    DiskStats stats_;

    sim::Semaphore mech_;  ///< actuator + read/write channel
    sim::Semaphore bus_;   ///< host interface

    std::uint64_t current_cylinder_ = 0;
    double mech_scale_ = 1.0; ///< slow-drive fault multiplier
    std::vector<CacheSegment> segments_;

    // Write-behind: simulated time at which all accepted writes will
    // have drained to media.
    sim::Tick media_free_at_ = 0;
};

} // namespace nasd::disk

#endif // NASD_DISK_DISK_MODEL_H_
