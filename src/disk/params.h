/**
 * @file
 * Disk drive parameter sets.
 *
 * The mechanical/caching parameters for the three Seagate drives the
 * paper measures or cites. Values come from the paper where it states
 * them (media rates, bus rates, the Barracuda's cached/random service
 * times) and from period-typical spec sheets otherwise; see DESIGN.md
 * for the calibration notes.
 */
#ifndef NASD_DISK_PARAMS_H_
#define NASD_DISK_PARAMS_H_

#include <cstdint>
#include <string>

#include "util/units.h"

namespace nasd::disk {

/** Geometry, mechanics, and cache configuration of one drive. */
struct DiskParams
{
    std::string name;

    // Geometry.
    std::uint32_t block_size = 512;      ///< bytes per sector
    std::uint32_t sectors_per_track = 100;
    std::uint32_t heads = 4;             ///< tracks per cylinder
    std::uint32_t cylinders = 10000;

    // Mechanics.
    double rpm = 5400;
    double track_to_track_ms = 1.0;      ///< minimum (adjacent) seek
    double avg_seek_ms = 11.0;           ///< seek over 1/3 stroke
    double max_seek_ms = 22.0;           ///< full-stroke seek

    // Interface.
    double bus_mb_per_s = 5.0;           ///< host transfer rate (MB/s)
    double controller_overhead_ms = 0.29; ///< per-command fixed cost

    // Cache.
    std::uint64_t cache_bytes = 128 * util::kKB;
    std::uint32_t cache_segments = 2;
    std::uint64_t readahead_bytes = 64 * util::kKB;
    bool write_behind = true;
    std::uint64_t write_buffer_bytes = 512 * util::kKB;

    /** Total capacity in sectors. */
    std::uint64_t
    totalBlocks() const
    {
        return static_cast<std::uint64_t>(sectors_per_track) * heads *
               cylinders;
    }

    /** Sustained media transfer rate in bytes per second. */
    double
    mediaBytesPerSec() const
    {
        const double rps = rpm / 60.0;
        return rps * sectors_per_track * block_size;
    }

    /** Full rotation period in nanoseconds. */
    double
    rotationPeriodNs() const
    {
        return 60.0 * 1e9 / rpm;
    }
};

/**
 * Seagate Medallist ST52160 (the prototype's drive): 5400 rpm,
 * ~4.6 MB/s media, 5 MB/s SCSI bus. Two of these behind a striping
 * driver form one prototype "NASD drive" (~7.5 MB/s raw).
 */
DiskParams medallistParams();

/**
 * Seagate Cheetah ST34501W (the NFS comparison server's drives):
 * 10000 rpm, ~13.5 MB/s media, 40 MB/s Wide UltraSCSI.
 */
DiskParams cheetahParams();

/**
 * Seagate Barracuda ST34371W (Table 1's hardware yardstick): tuned so
 * a cached sequential sector reads in ~0.3 ms, a random single sector
 * in ~9.4 ms, and a random 64 KB in ~11.1 ms, as the paper reports.
 */
DiskParams barracudaParams();

} // namespace nasd::disk

#endif // NASD_DISK_PARAMS_H_
