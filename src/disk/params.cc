#include "disk/params.h"

namespace nasd::disk {

DiskParams
medallistParams()
{
    DiskParams p;
    p.name = "Seagate Medallist ST52160";
    p.sectors_per_track = 100; // 90 rps * 100 * 512B = ~4.6 MB/s media
    p.heads = 4;
    p.cylinders = 10300; // ~2.1 GB
    p.rpm = 5400;
    p.track_to_track_ms = 1.5;
    p.avg_seek_ms = 11.0;
    p.max_seek_ms = 22.0;
    p.bus_mb_per_s = 5.0; // narrow SCSI as in the prototype
    p.controller_overhead_ms = 0.5;
    p.cache_bytes = 256 * util::kKB;
    p.cache_segments = 2;
    p.readahead_bytes = 96 * util::kKB;
    p.write_buffer_bytes = 512 * util::kKB;
    return p;
}

DiskParams
cheetahParams()
{
    DiskParams p;
    p.name = "Seagate Cheetah ST34501W";
    p.sectors_per_track = 158; // ~167 rps * 158 * 512B = ~13.5 MB/s media
    p.heads = 8;
    p.cylinders = 7000; // ~4.5 GB
    p.rpm = 10025;
    p.track_to_track_ms = 0.98;
    p.avg_seek_ms = 7.7;
    p.max_seek_ms = 16.0;
    p.bus_mb_per_s = 40.0; // Wide UltraSCSI
    p.controller_overhead_ms = 0.3;
    p.cache_bytes = 1024 * util::kKB; // ST34501W: 1 MB, 8 segments
    p.cache_segments = 8;
    p.readahead_bytes = 128 * util::kKB;
    p.write_buffer_bytes = 512 * util::kKB;
    return p;
}

DiskParams
barracudaParams()
{
    DiskParams p;
    p.name = "Seagate Barracuda ST34371W";
    p.sectors_per_track = 244; // 120 rps * 244 * 512B = ~15 MB/s media
    p.heads = 10;
    p.cylinders = 3500; // ~4.4 GB
    p.rpm = 7200;
    p.track_to_track_ms = 0.8;
    p.avg_seek_ms = 5.0; // calibrated: 9.4 ms random single sector
    p.max_seek_ms = 12.0;
    p.bus_mb_per_s = 40.0; // Wide UltraSCSI
    p.controller_overhead_ms = 0.29;
    p.cache_bytes = 512 * util::kKB;
    p.cache_segments = 4;
    p.readahead_bytes = 128 * util::kKB;
    p.write_buffer_bytes = 512 * util::kKB;
    return p;
}

} // namespace nasd::disk
