/**
 * @file
 * RAID-0 striping block driver.
 *
 * The prototype NASD "drive" is two Medallists behind a software
 * striping driver (32 KB stripe unit) on two SCSI buses; this class is
 * that driver. Stripe unit k lives on disk (k mod N) at unit offset
 * (k div N), so a large sequential request turns into one contiguous
 * request per member disk, issued in parallel.
 */
#ifndef NASD_DISK_STRIPING_H_
#define NASD_DISK_STRIPING_H_

#include <cstdint>
#include <span>
#include <vector>

#include "disk/block_device.h"
#include "sim/simulator.h"

namespace nasd::disk {

/** RAID-0 striping across homogeneous member devices. */
class StripingDriver : public BlockDevice
{
  public:
    /**
     * @param sim Owning simulator.
     * @param members Member devices (not owned); all must share a block
     *        size, and the stripe unit must be a multiple of it.
     * @param stripe_unit_bytes Contiguous bytes per disk per stripe.
     */
    StripingDriver(sim::Simulator &sim, std::vector<BlockDevice *> members,
                   std::uint64_t stripe_unit_bytes);

    std::uint32_t blockSize() const override;
    std::uint64_t numBlocks() const override;

    sim::Task<void> read(std::uint64_t block, std::uint32_t count,
                         std::span<std::uint8_t> out,
                         util::OpAttribution *attr = nullptr) override;
    sim::Task<void> write(std::uint64_t block, std::uint32_t count,
                          std::span<const std::uint8_t> data,
                          util::OpAttribution *attr = nullptr) override;
    sim::Task<void> flush() override;

    void peek(std::uint64_t byte_offset,
              std::span<std::uint8_t> out) const override;
    void poke(std::uint64_t byte_offset,
              std::span<const std::uint8_t> data) override;

    std::uint64_t stripeUnitBytes() const { return unit_blocks_ * blockSize(); }
    std::size_t memberCount() const { return members_.size(); }

  private:
    /** A contiguous piece of one member disk plus its place in the
     *  caller's buffer (which is not contiguous after coalescing). */
    struct Extent
    {
        std::size_t disk;
        std::uint64_t disk_block;
        std::uint32_t count;
        /// Host-buffer offsets of each stripe-unit-sized piece.
        std::vector<std::pair<std::uint64_t, std::uint32_t>> pieces;
    };

    /** Split [block, block+count) into per-disk coalesced extents. */
    std::vector<Extent> mapRange(std::uint64_t block,
                                 std::uint32_t count) const;

    sim::Task<void> readExtent(const Extent &e, std::span<std::uint8_t> out,
                               util::OpAttribution *attr);
    sim::Task<void> writeExtent(const Extent &e,
                                std::span<const std::uint8_t> data,
                                util::OpAttribution *attr);

    sim::Simulator &sim_;
    std::vector<BlockDevice *> members_;
    std::uint64_t unit_blocks_;
};

} // namespace nasd::disk

#endif // NASD_DISK_STRIPING_H_
