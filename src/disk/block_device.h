/**
 * @file
 * Abstract block device interface.
 *
 * Everything that stores fixed-size blocks — a single mechanical disk,
 * a striped set of disks — implements this. Operations are coroutines:
 * they move real bytes immediately and consume simulated time according
 * to the device's timing model.
 */
#ifndef NASD_DISK_BLOCK_DEVICE_H_
#define NASD_DISK_BLOCK_DEVICE_H_

#include <cstdint>
#include <span>

#include "sim/task.h"
#include "util/attribution.h"

namespace nasd::disk {

/** Asynchronous fixed-block storage device. */
class BlockDevice
{
  public:
    virtual ~BlockDevice() = default;

    /** Bytes per block (sector). */
    virtual std::uint32_t blockSize() const = 0;

    /** Device capacity in blocks. */
    virtual std::uint64_t numBlocks() const = 0;

    /**
     * Read @p count blocks starting at @p block into @p out.
     * When @p attr is set, the device charges its queue waits and
     * service phases (bus, mechanism) to it.
     * @pre out.size() == count * blockSize().
     */
    virtual sim::Task<void> read(std::uint64_t block, std::uint32_t count,
                                 std::span<std::uint8_t> out,
                                 util::OpAttribution *attr = nullptr) = 0;

    /**
     * Write @p count blocks starting at @p block from @p data.
     * With write-behind enabled the task completes when the device has
     * accepted the data, not when media is updated. @p attr as for
     * read().
     */
    virtual sim::Task<void> write(std::uint64_t block, std::uint32_t count,
                                  std::span<const std::uint8_t> data,
                                  util::OpAttribution *attr = nullptr) = 0;

    /** Wait until all accepted writes have reached the media. */
    virtual sim::Task<void> flush() = 0;

    /**
     * Zero-time raw byte access (simulation plumbing, not part of the
     * modeled interface): copy bytes out of the backing store without
     * charging simulated time. Higher layers use this for data they
     * have already paid for (their own cache hits).
     */
    virtual void peek(std::uint64_t byte_offset,
                      std::span<std::uint8_t> out) const = 0;

    /** Zero-time raw byte update; see peek(). */
    virtual void poke(std::uint64_t byte_offset,
                      std::span<const std::uint8_t> data) = 0;

    /** Total capacity in bytes. */
    std::uint64_t
    capacityBytes() const
    {
        return numBlocks() * blockSize();
    }
};

} // namespace nasd::disk

#endif // NASD_DISK_BLOCK_DEVICE_H_
