#include "disk/disk_model.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/metrics.h"

namespace nasd::disk {

DiskStats::DiskStats(const std::string &prefix)
    : reads(util::metrics().counter(prefix + "/reads")),
      writes(util::metrics().counter(prefix + "/writes")),
      cache_hits(util::metrics().counter(prefix + "/cache_hits")),
      cache_misses(util::metrics().counter(prefix + "/cache_misses")),
      media_blocks_read(
          util::metrics().counter(prefix + "/media_blocks_read")),
      media_blocks_written(
          util::metrics().counter(prefix + "/media_blocks_written")),
      seeks(util::metrics().counter(prefix + "/seeks")),
      bus_wait_ns(util::metrics().counter(prefix + "/bus_wait_ns")),
      bus_service_ns(util::metrics().counter(prefix + "/bus_service_ns")),
      mech_wait_ns(util::metrics().counter(prefix + "/mech_wait_ns")),
      mech_service_ns(util::metrics().counter(prefix + "/mech_service_ns"))
{}

namespace {

/// Fraction of the raw media rate achieved while draining the write
/// buffer in the background (head/track switches miss rotations).
constexpr double kWriteDrainEfficiency = 0.75;

} // namespace

DiskModel::DiskModel(sim::Simulator &sim, DiskParams params)
    : sim_(sim), params_(std::move(params)),
      stats_(util::metrics().uniquePrefix("disk")), mech_(sim, 1),
      bus_(sim, 1), segments_(params_.cache_segments)
{
    NASD_ASSERT(params_.cache_segments > 0);
}

sim::Tick
DiskModel::seekTime(std::uint64_t from_cyl, std::uint64_t to_cyl) const
{
    if (from_cyl == to_cyl)
        return 0;
    const double distance = from_cyl > to_cyl
                                ? static_cast<double>(from_cyl - to_cyl)
                                : static_cast<double>(to_cyl - from_cyl);
    // Calibrate t2t + k*sqrt(d) so that a third-of-stroke seek costs
    // the advertised average; clamp at the full-stroke time.
    const double third_stroke = static_cast<double>(params_.cylinders) / 3.0;
    const double k = (params_.avg_seek_ms - params_.track_to_track_ms) /
                     std::sqrt(third_stroke);
    const double ms = std::min(
        params_.max_seek_ms,
        params_.track_to_track_ms + k * std::sqrt(distance));
    return sim::msec(ms);
}

sim::Tick
DiskModel::mechanicalTime(std::uint64_t block, std::uint32_t count)
{
    const std::uint64_t cyl = cylinderOf(block);
    const sim::Tick seek = seekTime(current_cylinder_, cyl);
    if (seek > 0)
        stats_.seeks.add();

    // Rotational position is a deterministic function of the simulated
    // clock: the platter keeps spinning regardless of what we do.
    const double period = params_.rotationPeriodNs();
    const double at = static_cast<double>(sim_.now() + seek);
    const double pos = std::fmod(at, period) / period;
    const double target =
        static_cast<double>(block % params_.sectors_per_track) /
        params_.sectors_per_track;
    double wait_frac = target - pos;
    if (wait_frac < 0)
        wait_frac += 1.0;
    const auto rot = static_cast<sim::Tick>(wait_frac * period);

    const sim::Tick media = static_cast<sim::Tick>(count) *
                            perBlockMediaTime();

    current_cylinder_ = cylinderOf(block + count - 1);
    // media already carries mech_scale_ via perBlockMediaTime().
    return static_cast<sim::Tick>(static_cast<double>(seek + rot) *
                                  mech_scale_) +
           media;
}

DiskModel::CacheSegment *
DiskModel::findSegment(std::uint64_t block)
{
    for (auto &seg : segments_) {
        if (seg.contains(block))
            return &seg;
    }
    return nullptr;
}

void
DiskModel::cancelPendingReadahead()
{
    const sim::Tick now = sim_.now();
    for (auto &seg : segments_) {
        if (!seg.valid || seg.end <= seg.sync_end)
            continue;
        if (seg.availableAt(seg.end - 1) <= now)
            continue; // fully arrived
        std::uint64_t arrived = 0;
        if (now > seg.load_done && seg.per_block > 0)
            arrived = (now - seg.load_done) / seg.per_block;
        seg.end = std::min(seg.end, seg.sync_end + arrived);
        if (seg.end <= seg.start)
            seg.valid = false;
    }
}

void
DiskModel::installSegment(std::uint64_t block, std::uint32_t count,
                          sim::Tick load_done)
{
    const std::uint64_t seg_capacity_blocks = std::max<std::uint64_t>(
        1, params_.cache_bytes / params_.cache_segments /
               params_.block_size);
    const std::uint64_t ra_blocks =
        std::min<std::uint64_t>(params_.readahead_bytes / params_.block_size,
                                seg_capacity_blocks);

    // Extend an existing segment if this read continues it; otherwise
    // take the least-recently-used one.
    CacheSegment *seg = nullptr;
    for (auto &s : segments_) {
        if (s.valid && s.end == block) {
            seg = &s;
            break;
        }
    }
    if (seg == nullptr) {
        seg = &segments_[0];
        for (auto &s : segments_) {
            if (!s.valid) {
                seg = &s;
                break;
            }
            if (s.last_use < seg->last_use)
                seg = &s;
        }
        seg->valid = true;
        seg->start = block;
    }

    seg->sync_end = block + count;
    seg->end = std::min(seg->sync_end + ra_blocks,
                        numBlocks()); // readahead continues past request
    seg->load_done = load_done;
    seg->per_block = perBlockMediaTime();
    seg->last_use = load_done;

    // Bound the segment to its share of the cache (ring behaviour).
    if (seg->end - seg->start > seg_capacity_blocks)
        seg->start = seg->end - seg_capacity_blocks;
}

void
DiskModel::invalidateRange(std::uint64_t block, std::uint32_t count)
{
    const std::uint64_t end = block + count;
    for (auto &seg : segments_) {
        if (!seg.valid || end <= seg.start || block >= seg.end)
            continue;
        // Keep the prefix if the overlap is at the tail; otherwise drop.
        if (block > seg.start) {
            seg.end = block;
            seg.sync_end = std::min(seg.sync_end, seg.end);
        } else {
            seg.valid = false;
        }
    }
}

void
DiskModel::noteWait(util::ResourceClass c, sim::Tick ns,
                    util::OpAttribution *attr)
{
    (c == util::ResourceClass::kDiskBus ? stats_.bus_wait_ns
                                        : stats_.mech_wait_ns)
        .add(ns);
    if (attr)
        attr->addWait(c, ns);
}

void
DiskModel::noteService(util::ResourceClass c, sim::Tick ns,
                       util::OpAttribution *attr)
{
    (c == util::ResourceClass::kDiskBus ? stats_.bus_service_ns
                                        : stats_.mech_service_ns)
        .add(ns);
    if (attr)
        attr->addService(c, ns);
}

sim::Task<void>
DiskModel::read(std::uint64_t block, std::uint32_t count,
                std::span<std::uint8_t> out, util::OpAttribution *attr)
{
    NASD_ASSERT(count > 0, "zero-length disk read");
    NASD_ASSERT(block + count <= numBlocks(), "read past end of disk");
    NASD_ASSERT(out.size() ==
                static_cast<std::size_t>(count) * params_.block_size);
    stats_.reads.add();
    using util::ResourceClass;

    // Command setup on the bus.
    auto bus = co_await sim::scopedAcquire(sim_, bus_);
    noteWait(ResourceClass::kDiskBus, bus.waitNs(), attr);
    const sim::Tick overhead = sim::msec(params_.controller_overhead_ms);
    co_await sim_.delay(overhead);
    noteService(ResourceClass::kDiskBus, overhead, attr);

    // Find the first block the cache cannot supply.
    std::uint64_t first_missing = block + count;
    for (std::uint64_t b = block; b < block + count; ++b) {
        if (findSegment(b) == nullptr) {
            first_missing = b;
            break;
        }
    }

    if (first_missing < block + count) {
        stats_.cache_misses.add();
        // Disconnect from the bus during the mechanical phase.
        bus.release();
        auto mech = co_await sim::scopedAcquire(sim_, mech_);
        noteWait(ResourceClass::kDiskMech, mech.waitNs(), attr);
        cancelPendingReadahead();
        const auto missing =
            static_cast<std::uint32_t>(block + count - first_missing);
        const sim::Tick t = mechanicalTime(first_missing, missing);
        co_await sim_.delay(t);
        noteService(ResourceClass::kDiskMech, t, attr);
        stats_.media_blocks_read.add(missing);
        installSegment(first_missing, missing, sim_.now());
        mech.release();
        bus = co_await sim::scopedAcquire(sim_, bus_);
        noteWait(ResourceClass::kDiskBus, bus.waitNs(), attr);
    } else {
        stats_.cache_hits.add();
        // All blocks cached, but readahead may still be in flight; wait
        // for the last needed block to arrive off the media. Charged as
        // mechanism service: the head is streaming those blocks.
        sim::Tick ready = 0;
        for (std::uint64_t b = block; b < block + count; ++b) {
            auto *seg = findSegment(b);
            NASD_ASSERT(seg != nullptr);
            ready = std::max(ready, seg->availableAt(b));
            seg->last_use = sim_.now();
        }
        if (ready > sim_.now()) {
            const sim::Tick stream = ready - sim_.now();
            co_await sim_.delay(stream);
            noteService(ResourceClass::kDiskMech, stream, attr);
        }
    }

    // Data transfer to the host.
    const sim::Tick xfer = busTime(out.size());
    co_await sim_.delay(xfer);
    noteService(ResourceClass::kDiskBus, xfer, attr);
    bus.release();

    data_.read(block * params_.block_size, out);
}

sim::Task<void>
DiskModel::write(std::uint64_t block, std::uint32_t count,
                 std::span<const std::uint8_t> data,
                 util::OpAttribution *attr)
{
    NASD_ASSERT(count > 0, "zero-length disk write");
    NASD_ASSERT(block + count <= numBlocks(), "write past end of disk");
    NASD_ASSERT(data.size() ==
                static_cast<std::size_t>(count) * params_.block_size);
    stats_.writes.add();
    using util::ResourceClass;

    // Bytes land in the backing store at accept time, before any
    // simulated delay: otherwise a queued write carrying an older
    // snapshot could complete after a newer update and roll it back.
    invalidateRange(block, count);
    data_.write(block * params_.block_size, data);
    stats_.media_blocks_written.add(count);

    auto bus = co_await sim::scopedAcquire(sim_, bus_);
    noteWait(ResourceClass::kDiskBus, bus.waitNs(), attr);
    const sim::Tick overhead = sim::msec(params_.controller_overhead_ms);
    co_await sim_.delay(overhead);
    const sim::Tick xfer = busTime(data.size());
    co_await sim_.delay(xfer);
    noteService(ResourceClass::kDiskBus, overhead + xfer, attr);
    bus.release();

    if (params_.write_behind) {
        // Acknowledge now; account the media work as queued drain time
        // and stall only if the backlog exceeds the buffer. A stall is
        // mechanism service: the head is draining the backlog.
        const double drain_bps =
            params_.mediaBytesPerSec() * kWriteDrainEfficiency /
            mech_scale_;
        const auto drain_ns = static_cast<sim::Tick>(
            static_cast<double>(data.size()) / drain_bps * 1e9);
        media_free_at_ = std::max(media_free_at_, sim_.now()) + drain_ns;

        const auto buffer_ns = static_cast<sim::Tick>(
            static_cast<double>(params_.write_buffer_bytes) / drain_bps *
            1e9);
        const sim::Tick backlog = media_free_at_ - sim_.now();
        if (backlog > buffer_ns) {
            co_await sim_.delay(backlog - buffer_ns);
            noteService(ResourceClass::kDiskMech, backlog - buffer_ns,
                        attr);
        }
    } else {
        auto mech = co_await sim::scopedAcquire(sim_, mech_);
        noteWait(ResourceClass::kDiskMech, mech.waitNs(), attr);
        cancelPendingReadahead();
        const sim::Tick t = mechanicalTime(block, count);
        co_await sim_.delay(t);
        noteService(ResourceClass::kDiskMech, t, attr);
        mech.release();
    }
}

sim::Task<void>
DiskModel::flush()
{
    if (media_free_at_ > sim_.now())
        co_await sim_.delay(media_free_at_ - sim_.now());
}

} // namespace nasd::disk
