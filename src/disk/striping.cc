#include "disk/striping.h"

#include <cstring>

#include "sim/sync.h"
#include "util/logging.h"

namespace nasd::disk {

StripingDriver::StripingDriver(sim::Simulator &sim,
                               std::vector<BlockDevice *> members,
                               std::uint64_t stripe_unit_bytes)
    : sim_(sim), members_(std::move(members))
{
    NASD_ASSERT(!members_.empty(), "striping driver needs members");
    const std::uint32_t bs = members_[0]->blockSize();
    for (const auto *m : members_)
        NASD_ASSERT(m->blockSize() == bs, "mixed block sizes in stripe");
    NASD_ASSERT(stripe_unit_bytes % bs == 0,
                "stripe unit must be a multiple of the block size");
    unit_blocks_ = stripe_unit_bytes / bs;
    NASD_ASSERT(unit_blocks_ > 0);
}

std::uint32_t
StripingDriver::blockSize() const
{
    return members_[0]->blockSize();
}

std::uint64_t
StripingDriver::numBlocks() const
{
    std::uint64_t min_blocks = members_[0]->numBlocks();
    for (const auto *m : members_)
        min_blocks = std::min(min_blocks, m->numBlocks());
    // Whole stripes only.
    const std::uint64_t units = min_blocks / unit_blocks_;
    return units * unit_blocks_ * members_.size();
}

std::vector<StripingDriver::Extent>
StripingDriver::mapRange(std::uint64_t block, std::uint32_t count) const
{
    std::vector<Extent> extents;
    const std::uint64_t end = block + count;
    std::uint64_t p = block;
    while (p < end) {
        const std::uint64_t unit = p / unit_blocks_;
        const std::size_t disk = unit % members_.size();
        const std::uint64_t unit_on_disk = unit / members_.size();
        const std::uint64_t within = p % unit_blocks_;
        const auto take = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(end - p, unit_blocks_ - within));
        const std::uint64_t disk_block = unit_on_disk * unit_blocks_ + within;

        Extent *tail = nullptr;
        for (auto &e : extents) {
            if (e.disk == disk &&
                e.disk_block + e.count == disk_block) {
                tail = &e;
                break;
            }
        }
        const std::uint64_t host_offset =
            (p - block) * members_[0]->blockSize();
        if (tail != nullptr) {
            tail->count += take;
            tail->pieces.emplace_back(host_offset, take);
        } else {
            Extent e;
            e.disk = disk;
            e.disk_block = disk_block;
            e.count = take;
            e.pieces.emplace_back(host_offset, take);
            extents.push_back(std::move(e));
        }
        p += take;
    }
    return extents;
}

sim::Task<void>
StripingDriver::readExtent(const Extent &e, std::span<std::uint8_t> out,
                           util::OpAttribution *attr)
{
    const std::uint32_t bs = blockSize();
    std::vector<std::uint8_t> temp(static_cast<std::size_t>(e.count) * bs);
    co_await members_[e.disk]->read(e.disk_block, e.count, temp, attr);
    std::size_t temp_off = 0;
    for (const auto &[host_offset, blocks] : e.pieces) {
        const std::size_t bytes = static_cast<std::size_t>(blocks) * bs;
        std::memcpy(out.data() + host_offset, temp.data() + temp_off,
                    bytes);
        temp_off += bytes;
    }
}

sim::Task<void>
StripingDriver::writeExtent(const Extent &e,
                            std::span<const std::uint8_t> data,
                            util::OpAttribution *attr)
{
    const std::uint32_t bs = blockSize();
    std::vector<std::uint8_t> temp(static_cast<std::size_t>(e.count) * bs);
    std::size_t temp_off = 0;
    for (const auto &[host_offset, blocks] : e.pieces) {
        const std::size_t bytes = static_cast<std::size_t>(blocks) * bs;
        std::memcpy(temp.data() + temp_off, data.data() + host_offset,
                    bytes);
        temp_off += bytes;
    }
    co_await members_[e.disk]->write(e.disk_block, e.count, temp, attr);
}

sim::Task<void>
StripingDriver::read(std::uint64_t block, std::uint32_t count,
                     std::span<std::uint8_t> out,
                     util::OpAttribution *attr)
{
    NASD_ASSERT(out.size() == static_cast<std::size_t>(count) * blockSize());
    const auto extents = mapRange(block, count);
    if (attr == nullptr || extents.size() == 1) {
        std::vector<sim::Task<void>> tasks;
        tasks.reserve(extents.size());
        for (const auto &e : extents)
            tasks.push_back(readExtent(e, out, attr));
        co_await sim::parallelAll(sim_, std::move(tasks));
        co_return;
    }
    // Parallel fan-out: each branch attributes into its own scratch,
    // then the merged profile is normalized to the measured elapsed
    // time (critical-path normalization — summing the branches would
    // over-count time the op did not actually spend waiting).
    const sim::Tick start = sim_.now();
    std::vector<util::OpAttribution> parts(extents.size());
    std::vector<sim::Task<void>> tasks;
    tasks.reserve(extents.size());
    for (std::size_t i = 0; i < extents.size(); ++i)
        tasks.push_back(readExtent(extents[i], out, &parts[i]));
    co_await sim::parallelAll(sim_, std::move(tasks));
    util::OpAttribution merged;
    for (const auto &part : parts)
        merged.merge(part);
    merged.scaleToTotal(sim_.now() - start);
    attr->merge(merged);
}

sim::Task<void>
StripingDriver::write(std::uint64_t block, std::uint32_t count,
                      std::span<const std::uint8_t> data,
                      util::OpAttribution *attr)
{
    NASD_ASSERT(data.size() ==
                static_cast<std::size_t>(count) * blockSize());
    const auto extents = mapRange(block, count);
    if (attr == nullptr || extents.size() == 1) {
        std::vector<sim::Task<void>> tasks;
        tasks.reserve(extents.size());
        for (const auto &e : extents)
            tasks.push_back(writeExtent(e, data, attr));
        co_await sim::parallelAll(sim_, std::move(tasks));
        co_return;
    }
    const sim::Tick start = sim_.now();
    std::vector<util::OpAttribution> parts(extents.size());
    std::vector<sim::Task<void>> tasks;
    tasks.reserve(extents.size());
    for (std::size_t i = 0; i < extents.size(); ++i)
        tasks.push_back(writeExtent(extents[i], data, &parts[i]));
    co_await sim::parallelAll(sim_, std::move(tasks));
    util::OpAttribution merged;
    for (const auto &part : parts)
        merged.merge(part);
    merged.scaleToTotal(sim_.now() - start);
    attr->merge(merged);
}

void
StripingDriver::peek(std::uint64_t byte_offset,
                     std::span<std::uint8_t> out) const
{
    const std::uint64_t unit_bytes = unit_blocks_ * blockSize();
    std::size_t done = 0;
    while (done < out.size()) {
        const std::uint64_t pos = byte_offset + done;
        const std::uint64_t unit = pos / unit_bytes;
        const std::size_t disk = unit % members_.size();
        const std::uint64_t unit_on_disk = unit / members_.size();
        const std::uint64_t within = pos % unit_bytes;
        const std::size_t take = static_cast<std::size_t>(
            std::min<std::uint64_t>(out.size() - done,
                                    unit_bytes - within));
        members_[disk]->peek(unit_on_disk * unit_bytes + within,
                             out.subspan(done, take));
        done += take;
    }
}

void
StripingDriver::poke(std::uint64_t byte_offset,
                     std::span<const std::uint8_t> data)
{
    const std::uint64_t unit_bytes = unit_blocks_ * blockSize();
    std::size_t done = 0;
    while (done < data.size()) {
        const std::uint64_t pos = byte_offset + done;
        const std::uint64_t unit = pos / unit_bytes;
        const std::size_t disk = unit % members_.size();
        const std::uint64_t unit_on_disk = unit / members_.size();
        const std::uint64_t within = pos % unit_bytes;
        const std::size_t take = static_cast<std::size_t>(
            std::min<std::uint64_t>(data.size() - done,
                                    unit_bytes - within));
        members_[disk]->poke(unit_on_disk * unit_bytes + within,
                             data.subspan(done, take));
        done += take;
    }
}

sim::Task<void>
StripingDriver::flush()
{
    std::vector<sim::Task<void>> tasks;
    tasks.reserve(members_.size());
    for (auto *m : members_)
        tasks.push_back(m->flush());
    co_await sim::parallelAll(sim_, std::move(tasks));
}

} // namespace nasd::disk
