#include "cost/cost_model.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace nasd::cost {

ServerComponents
lowCostServer()
{
    ServerComponents c;
    c.name = "low-cost (high-volume components)";
    c.machine_dollars = 1000;
    c.memory_mb_per_s = 133; // 32-bit PCI
    c.nic_dollars = 50;
    c.nic_mb_per_s = 12.5; // 100 Mb/s Fast Ethernet
    c.disk_if_dollars = 100;
    c.disk_if_mb_per_s = 40; // wide Ultra SCSI
    c.disk_dollars = 300;
    c.disk_mb_per_s = 10; // Seagate Medallist
    return c;
}

ServerComponents
highEndServer()
{
    ServerComponents c;
    c.name = "high-end (mid-range/enterprise components)";
    c.machine_dollars = 7000;
    c.memory_mb_per_s = 532; // dual 64-bit PCI
    c.nic_dollars = 650;
    c.nic_mb_per_s = 125; // 1 Gb/s Ethernet
    c.disk_if_dollars = 400;
    c.disk_if_mb_per_s = 80; // Ultra2 SCSI
    c.disk_dollars = 600;
    c.disk_mb_per_s = 18; // Seagate Cheetah
    return c;
}

CostBreakdown
ServerCostModel::analyze(int disks) const
{
    NASD_ASSERT(disks > 0);
    CostBreakdown b;
    b.disks = disks;
    b.aggregate_disk_mb_per_s = disks * c_.disk_mb_per_s;

    // Interfaces sized to carry the disks' aggregate bandwidth. A
    // slightly-over-committed interface (within ~2%) still counts as
    // sufficient, matching the paper's "14 disks, 2 network
    // interfaces" figure for 252 MB/s over two 1 Gb/s NICs.
    constexpr double kAllowance = 0.05;
    b.nics = static_cast<int>(std::ceil(
        b.aggregate_disk_mb_per_s / c_.nic_mb_per_s - kAllowance));
    b.disk_interfaces = static_cast<int>(std::ceil(
        b.aggregate_disk_mb_per_s / c_.disk_if_mb_per_s - kAllowance));
    b.nics = std::max(b.nics, 1);
    b.disk_interfaces = std::max(b.disk_interfaces, 1);

    b.server_dollars = c_.machine_dollars + b.nics * c_.nic_dollars +
                       b.disk_interfaces * c_.disk_if_dollars;
    b.storage_dollars = disks * c_.disk_dollars;
    b.overhead_percent = b.server_dollars / b.storage_dollars * 100.0;
    b.memory_saturated = disks > maxDisksByMemory();
    return b;
}

int
ServerCostModel::maxDisksByMemory() const
{
    // Every byte enters and leaves memory once: usable = half.
    const double usable = c_.memory_mb_per_s / 2.0;
    return std::max(1, static_cast<int>(usable / c_.disk_mb_per_s));
}

double
ServerCostModel::systemCostRatio(int disks,
                                 double nasd_premium_fraction) const
{
    const auto b = analyze(disks);
    const double traditional = b.server_dollars + b.storage_dollars;
    const double nasd =
        b.storage_dollars * (1.0 + nasd_premium_fraction);
    return traditional / nasd;
}

} // namespace nasd::cost
