/**
 * @file
 * The server cost-overhead model of Figure 4.
 *
 * A traditional server bridges a peripheral network (SCSI) and a
 * client network (Ethernet); every byte crosses its memory. Given
 * component costs and peak bandwidths, the model computes the server
 * cost overhead at maximum bandwidth — the sum of the machine cost and
 * enough network/disk interfaces to carry the disks' aggregate
 * bandwidth, divided by the total cost of the disks — and the disk
 * count at which the server's memory system saturates (each byte in
 * and out of memory once).
 */
#ifndef NASD_COST_COST_MODEL_H_
#define NASD_COST_COST_MODEL_H_

#include <cstdint>
#include <string>

namespace nasd::cost {

/** Component prices and peak bandwidths for one server class. */
struct ServerComponents
{
    std::string name;
    double machine_dollars = 1000;  ///< processor unit + memory
    double memory_mb_per_s = 133;   ///< memory/backplane bandwidth
    double nic_dollars = 50;
    double nic_mb_per_s = 12.5;     ///< 100 Mb/s Ethernet
    double disk_if_dollars = 100;
    double disk_if_mb_per_s = 40;   ///< Ultra SCSI
    double disk_dollars = 300;
    double disk_mb_per_s = 10;      ///< Seagate Medallist
};

/** The low-cost, high-volume server of Figure 4 (left values). */
ServerComponents lowCostServer();

/** The high-end reliable server of Figure 4 (right values). */
ServerComponents highEndServer();

/** Everything Figure 4 derives for one disk count. */
struct CostBreakdown
{
    int disks = 0;
    double aggregate_disk_mb_per_s = 0;
    int nics = 0;
    int disk_interfaces = 0;
    double server_dollars = 0;  ///< machine + interfaces
    double storage_dollars = 0; ///< disks only
    double overhead_percent = 0;
    bool memory_saturated = false;
};

/** Analytic model over one server class. */
class ServerCostModel
{
  public:
    explicit ServerCostModel(ServerComponents components)
        : c_(components)
    {}

    const ServerComponents &components() const { return c_; }

    /** Overhead analysis at @p disks drives. */
    CostBreakdown analyze(int disks) const;

    /**
     * Largest disk count the memory system can feed: every byte moves
     * into and out of memory once, so usable bandwidth is half the
     * memory bandwidth.
     */
    int maxDisksByMemory() const;

    /**
     * NASD comparison: drives that cost @p premium_fraction more but
     * need no data-moving server. Returns the overhead percent (just
     * the premium).
     */
    static double
    nasdOverheadPercent(double premium_fraction = 0.10)
    {
        return premium_fraction * 100.0;
    }

    /** Total-system cost ratio: traditional / NASD at @p disks. */
    double systemCostRatio(int disks,
                           double nasd_premium_fraction = 0.10) const;

  private:
    ServerComponents c_;
};

} // namespace nasd::cost

#endif // NASD_COST_COST_MODEL_H_
