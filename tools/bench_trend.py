#!/usr/bin/env python3
"""Diff headline metrics across two or more BENCH_*.json dumps.

Takes the dumps oldest-first (e.g. the checked-in baseline, then
today's run) and prints one row per headline gauge — ``*_mbps``
throughput points, ``*_instr`` instruction counts, ``*_ms`` latencies
(which includes the fleet p50/p99 gauges) — with its value in every
dump and the relative change from the first to the last. Gauges
missing from a dump are shown as ``-`` and never fail the check on
their own: a brand-new gauge has no history to regress against.

With ``--fail-above PCT`` the exit status turns 1 when any gauge
present in both the first and last dump moved by more than PCT
percent in either direction — CI wires this against the baselines so
a silent throughput or tail-latency drift fails the build with a
readable table instead of a bare tolerance error.

Usage:
    tools/bench_trend.py OLD.json [MID.json ...] NEW.json \
        [--fail-above 25]

Exit status: 0 clean, 1 unreadable input or a delta above the limit.
"""

import argparse
import json
import sys

HEADLINE_SUFFIXES = ("_mbps", "_instr", "_ms")  # as check_bench_json.py


def headline_gauges(doc):
    return {
        path: float(value)
        for path, value in doc.get("metrics", {}).get("gauges", {}).items()
        if path.endswith(HEADLINE_SUFFIXES)
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("dumps", nargs="+",
                        help="two or more BENCH_*.json files, oldest first")
    parser.add_argument("--fail-above", type=float, metavar="PCT",
                        help="fail when any first-to-last delta exceeds"
                             " PCT percent")
    args = parser.parse_args()
    if len(args.dumps) < 2:
        parser.error("need at least two dumps to diff")

    docs = []
    for path in args.dumps:
        try:
            with open(path) as f:
                docs.append(json.load(f))
        except (OSError, json.JSONDecodeError) as e:
            print(f"{path}: {e}", file=sys.stderr)
            return 1

    benches = {doc.get("bench") for doc in docs}
    if len(benches) > 1:
        print(f"warning: dumps come from different benches: "
              f"{sorted(str(b) for b in benches)}", file=sys.stderr)

    gauges = [headline_gauges(doc) for doc in docs]
    paths = sorted(set().union(*gauges))
    if not paths:
        print("no headline gauges found"
              f" (suffixes: {', '.join(HEADLINE_SUFFIXES)})")
        return 1

    width = max(len(p) for p in paths)
    cols = [f"[{i}] {p}" for i, p in enumerate(args.dumps)]
    for i, c in enumerate(cols):
        print(c)
    header = " ".join(f"{f'[{i}]':>12}" for i in range(len(docs)))
    print(f"\n{'gauge':<{width}} {header} {'delta':>9}")

    offenders = []
    for path in paths:
        cells = []
        for g in gauges:
            cells.append(f"{g[path]:>12.3f}" if path in g else f"{'-':>12}")
        first, last = gauges[0].get(path), gauges[-1].get(path)
        if first is None or last is None:
            delta = "new" if first is None else "gone"
        elif first == 0:
            delta = "0-base" if last != 0 else "+0.0%"
        else:
            pct = (last - first) / abs(first) * 100.0
            delta = f"{pct:+.1f}%"
            if args.fail_above is not None \
                    and abs(pct) > args.fail_above:
                offenders.append((path, pct))
        print(f"{path:<{width}} {' '.join(cells)} {delta:>9}")

    if offenders:
        print(f"\n{len(offenders)} gauge(s) moved more than "
              f"±{args.fail_above:g}% from {args.dumps[0]} to"
              f" {args.dumps[-1]}:")
        for path, pct in offenders:
            print(f"  {path}: {pct:+.1f}%")
        return 1
    if args.fail_above is not None:
        print(f"\nall shared gauges within ±{args.fail_above:g}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
