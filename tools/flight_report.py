#!/usr/bin/env python3
"""Offline flight-recorder journal reader (stdlib only).

Merges the per-node journals of one or more flight-recorder dumps
(`fig9_mining --kill-drive --journal j.json`, test-failure dumps) into
one causally-ordered timeline — events carry a recorder-global sequence
number, so the merge is a plain sort — and renders views of it:

  flight_report.py j.json                     # summary + phase table
  flight_report.py j.json --trace 42          # timeline window around
                                              # every event of trace 42
  flight_report.py j.json --around 152 --radius 8
  flight_report.py j.json --find-rebuild-race # find a write that raced
                                              # the rebuild engine and
                                              # reconstruct the fence ->
                                              # degraded -> rebuild ->
                                              # re-fence sequence (exit 1
                                              # if no such write exists)

The last mode is the CI check that the journal is good for something:
a kill-drive run must contain at least one foreground write whose
events interleave with the rebuild fence/lock/re-fence events.
"""

import argparse
import json
import sys


def load_events(paths):
    """Merge the events of every dump, tagged with their node name,
    ordered by the recorder-global sequence number."""
    events = []
    exemplars = {}
    for path in paths:
        with open(path) as f:
            dump = json.load(f)
        if dump.get("schema_version") != 1:
            sys.exit(f"{path}: unsupported schema_version "
                     f"{dump.get('schema_version')!r}")
        for node, journal in dump["nodes"].items():
            for ev in journal["events"]:
                ev["node"] = node
                events.append(ev)
        exemplars.update(dump.get("exemplars", {}))
    events.sort(key=lambda e: e["seq"])
    return events, exemplars


def fmt(ev):
    detail = f" {ev['detail']}" if ev.get("detail") else ""
    trace = f" trace={ev['trace']}" if ev["trace"] else ""
    return (f"  [{ev['seq']:>6}] {ev['t_ns'] / 1e6:>12.3f} ms "
            f"{ev['node']:<8} {ev['kind']:<18}{trace} "
            f"a={ev['a']} b={ev['b']}{detail}")


def print_window(events, lo, hi, highlight=frozenset()):
    for ev in events:
        if lo <= ev["seq"] <= hi:
            mark = "*" if ev["seq"] in highlight else " "
            print(mark + fmt(ev)[1:])


def summary(events, exemplars):
    by_kind = {}
    by_node = {}
    for ev in events:
        by_kind[ev["kind"]] = by_kind.get(ev["kind"], 0) + 1
        by_node[ev["node"]] = by_node.get(ev["node"], 0) + 1
    print(f"{len(events)} events across {len(by_node)} nodes")
    print("\nevents by kind:")
    for kind in sorted(by_kind):
        print(f"  {kind:<22} {by_kind[kind]:>8}")

    phases = [e for e in events if e["kind"] in ("phase_begin", "phase_end")]
    if phases:
        print("\nphases:")
        for ev in phases:
            print(fmt(ev))

    if exemplars:
        print("\ntail exemplars (worst sample per op class):")
        for op in sorted(exemplars):
            ex = exemplars[op]
            if not ex["samples"]:
                continue
            worst = max(ex["samples"], key=lambda s: s["value_ns"])
            print(f"  {op:<12} {ex['count']:>8} samples, "
                  f"max {worst['value_ns'] / 1e6:.3f} ms "
                  f"(trace {worst['trace']}, seq {worst['seq']})")


def trace_view(events, trace_id, radius):
    mine = [e for e in events if e["trace"] == trace_id]
    if not mine:
        sys.exit(f"no events for trace {trace_id}")
    lo = max(0, mine[0]["seq"] - radius)
    hi = mine[-1]["seq"] + radius
    print(f"trace {trace_id}: {len(mine)} events, "
          f"seq {mine[0]['seq']}..{mine[-1]['seq']} "
          f"(window +/-{radius}, * = this trace)")
    print_window(events, lo, hi, highlight={e["seq"] for e in mine})


def find_rebuild_race(events, radius):
    """Reconstruct one foreground write that raced the rebuild: the
    version fence, the write's own degraded/write-through events inside
    the rebuild span, and the completion re-fence."""
    def first(pred):
        return next((e for e in events if pred(e)), None)

    fence = first(lambda e: e["kind"] == "version_fence"
                  and e.get("detail") == "rebuild_fence")
    start = first(lambda e: e["kind"] == "rebuild_start")
    done = first(lambda e: e["kind"] == "rebuild_complete")
    refence = first(lambda e: e["kind"] == "version_fence"
                    and e.get("detail") == "rebuild_refence")
    for name, ev in (("rebuild_fence", fence), ("rebuild_start", start),
                     ("rebuild_complete", done),
                     ("rebuild_refence", refence)):
        if ev is None:
            sys.exit(f"no {name} event in the journal — "
                     "was this a --kill-drive run?")

    racing = [e for e in events
              if e["trace"] and start["seq"] < e["seq"] < done["seq"]
              and e["kind"] in ("write_through", "degraded_write")]
    if not racing:
        print("no foreground write raced the rebuild "
              f"(span seq {start['seq']}..{done['seq']})")
        return 1

    # Prefer a write that reached the rebuild target (write_through);
    # any degraded write inside the span otherwise.
    pick = next((e for e in racing if e["kind"] == "write_through"),
                racing[0])
    trace = pick["trace"]
    mine = [e for e in events if e["trace"] == trace]
    print(f"write trace {trace} raced the rebuild "
          f"({len(mine)} events, anchor seq {pick['seq']}):\n")
    for label, ev in (("fence", fence), ("rebuild start", start)):
        print(f"-- {label}")
        print(fmt(ev))
    print(f"-- the racing write (window +/-{radius}, * = trace {trace})")
    print_window(events, max(0, mine[0]["seq"] - radius),
                 mine[-1]["seq"] + radius,
                 highlight={e["seq"] for e in mine})
    for label, ev in (("rebuild complete", done), ("re-fence", refence)):
        print(f"-- {label}")
        print(fmt(ev))
    return 0


def main():
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("journals", nargs="+", help="flight journal dump(s)")
    ap.add_argument("--trace", type=int,
                    help="render the window around this trace id")
    ap.add_argument("--around", type=int,
                    help="render the window around this sequence number")
    ap.add_argument("--radius", type=int, default=8,
                    help="window half-width in sequence numbers")
    ap.add_argument("--find-rebuild-race", action="store_true",
                    help="find a write that raced the rebuild (exit 1 "
                         "if none)")
    args = ap.parse_args()

    events, exemplars = load_events(args.journals)
    if args.find_rebuild_race:
        sys.exit(find_rebuild_race(events, args.radius))
    if args.trace is not None:
        trace_view(events, args.trace, args.radius)
    elif args.around is not None:
        print_window(events, max(0, args.around - args.radius),
                     args.around + args.radius)
    else:
        summary(events, exemplars)


if __name__ == "__main__":
    main()
