#!/usr/bin/env python3
"""Render a BENCH_*.json dump as a self-contained fleet dashboard.

Input is a bench metrics dump written by bench::writeBenchJson — the
"fleet_rollup" section (util::FleetRollup: merged per-op latency
histograms, per-instance deviation scores, straggler verdicts) plus,
when present, the 50 ms "timeseries" section sampled by a
sim::StatsPoller run. Output is one static HTML file with zero
external resources and zero JavaScript:

  * per-drive utilization heatmap — one row per `<drive>_cpu_util`
    series, one cell per sampling interval, shaded by utilization, so
    a straggling or idle drive is visible as a discolored stripe;
  * fleet percentile ladder — p25..p99.9 of every op group's merged
    histogram, computed from the dump's log-bucketed counts with the
    same midpoint rule as util::LogHistogram::percentile();
  * straggler callouts — every instance whose deviation score crossed
    the rollup threshold, with its p99 against the fleet median;
  * throughput / queue-depth sparkline tables for the remaining
    time series.

The renderer is deliberately deterministic: no wall-clock, no RNG, no
environment probes, sorted iteration everywhere, fixed-precision
number formatting. tools/check_determinism.sh renders the dashboard
twice from identical dumps and byte-compares the HTML.

Usage:
    tools/fleet_dashboard.py BENCH_fig9.json [--out fleet_dashboard.html]

Exit status: 0 on success, 1 on malformed input.
"""

import argparse
import html
import json
import sys

SUB_BUCKET_BITS = 5  # mirrors util::LogHistogram
SUB_BUCKET_COUNT = 1 << SUB_BUCKET_BITS


def bucket_width(lower):
    """Width of the log-histogram bucket starting at `lower` (the
    bucket scheme makes the width a function of the lower bound)."""
    if lower < SUB_BUCKET_COUNT:
        return 1
    return 1 << (lower.bit_length() - 1 - SUB_BUCKET_BITS)


def percentile(hist, p):
    """Percentile of a serialized LogHistogram, mirroring the C++
    midpoint-of-bucket rule so dashboard and bench agree."""
    count = hist["count"]
    if count == 0:
        return 0.0
    if p == 0.0:
        return float(hist["min"])
    if p == 100.0:
        return float(hist["max"])
    target = p / 100.0 * count
    cum = 0
    for lower, n in hist["buckets"]:
        cum += n
        if cum >= target:
            v = lower + (bucket_width(lower) - 1) / 2.0
            return min(max(v, float(hist["min"])), float(hist["max"]))
    return float(hist["max"])


def ms(ns):
    return f"{ns / 1e6:.3f}"


def heat_color(frac):
    """Map [0,1] to a white->steel-blue ramp (integer RGB, so the
    output bytes are platform-independent)."""
    frac = min(max(frac, 0.0), 1.0)
    r = round(247 - frac * (247 - 30))
    g = round(250 - frac * (250 - 90))
    b = round(252 - frac * (252 - 160))
    return f"rgb({r},{g},{b})"


def render_heatmap(ts, out):
    series = ts.get("series", {})
    drives = sorted((name for name in series if name.endswith("_cpu_util")),
                    key=lambda n: (len(n), n))
    if not drives:
        return
    interval_ms = ts["interval_ns"] / 1e6
    out.append("<h2>Per-drive utilization heatmap</h2>")
    out.append(f"<p>One cell per {interval_ms:.0f} ms sampling interval; "
               "darker is busier. A straggler shows up as a row that "
               "stays dark after its siblings go idle.</p>")
    peak = max((max(series[d]) for d in drives if series[d]), default=0.0)
    out.append('<table class="heat">')
    for drive in drives:
        cells = []
        for v in series[drive]:
            frac = v / peak if peak > 0 else 0.0
            cells.append(f'<td style="background:{heat_color(frac)}" '
                         f'title="{v:.3f}"></td>')
        name = html.escape(drive[: -len("_cpu_util")])
        out.append(f'<tr><th>{name}</th>{"".join(cells)}</tr>')
    out.append("</table>")
    out.append(f"<p>peak sampled utilization: {peak:.3f}</p>")


def render_sparklines(ts, out):
    series = ts.get("series", {})
    rest = sorted(n for n in series if not n.endswith("_cpu_util"))
    if not rest:
        return
    out.append("<h2>Fleet time series</h2>")
    out.append('<table class="spark"><tr><th>series</th><th>min</th>'
               "<th>max</th><th>last</th><th>trend</th></tr>")
    for name in rest:
        values = series[name]
        if not values:
            continue
        lo, hi = min(values), max(values)
        bars = ""
        for v in values:
            frac = (v - lo) / (hi - lo) if hi > lo else 0.5
            bar_h = 2 + round(frac * 16)
            bars += (f'<span class="bar" style="height:{bar_h}px" '
                     f'title="{v:.3f}"></span>')
        out.append(f"<tr><th>{html.escape(name)}</th><td>{lo:.3f}</td>"
                   f"<td>{hi:.3f}</td><td>{values[-1]:.3f}</td>"
                   f'<td class="trend">{bars}</td></tr>')
    out.append("</table>")


LADDER_POINTS = (25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.9)


def render_ladder(rollup, out):
    ops = rollup.get("ops", {})
    active = [(g, op) for g, op in sorted(ops.items())
              if op["merged"]["count"] > 0]
    if not active:
        out.append("<p>No latency instruments in this dump.</p>")
        return
    out.append("<h2>Fleet percentile ladder</h2>")
    out.append("<p>Merged across all instances of each op group "
               "(exact histogram merge, not an average of averages). "
               "Milliseconds.</p>")
    header = "".join(f"<th>p{p:g}</th>" for p in LADDER_POINTS)
    out.append(f'<table class="ladder"><tr><th>op group</th><th>ops</th>'
               f"<th>instances</th><th>min</th>{header}<th>max</th></tr>")
    for group, op in active:
        merged = op["merged"]
        cols = "".join(f"<td>{ms(percentile(merged, p))}</td>"
                       for p in LADDER_POINTS)
        out.append(f"<tr><th>{html.escape(group)}</th>"
                   f"<td>{merged['count']}</td>"
                   f"<td>{len(op['instances'])}</td>"
                   f"<td>{ms(merged['min'])}</td>{cols}"
                   f"<td>{ms(merged['max'])}</td></tr>")
    out.append("</table>")


def render_stragglers(rollup, out):
    out.append("<h2>Straggler callouts</h2>")
    threshold = rollup.get("score_threshold", 0)
    callouts = []
    for group, op in sorted(rollup.get("ops", {}).items()):
        for name, inst in sorted(op["instances"].items()):
            if inst["straggler"]:
                callouts.append((group, name, inst, op["median_p99_ns"]))
    if not callouts:
        out.append(f"<p class=\"ok\">No instance crossed the deviation "
                   f"threshold (score &gt; {threshold:g}). "
                   "Fleet looks healthy.</p>")
        return
    out.append('<table class="straggler"><tr><th>op group</th>'
               "<th>instance</th><th>score</th><th>p99 ms</th>"
               "<th>fleet median p99 ms</th><th>slowdown</th></tr>")
    for group, name, inst, median_p99 in callouts:
        slowdown = (inst["p99_ns"] / median_p99
                    if median_p99 > 0 else float("inf"))
        out.append(f'<tr class="bad"><td>{html.escape(group)}</td>'
                   f"<td>{html.escape(name)}</td>"
                   f"<td>{inst['score']:.1f}</td>"
                   f"<td>{ms(inst['p99_ns'])}</td>"
                   f"<td>{ms(median_p99)}</td>"
                   f"<td>{slowdown:.2f}x</td></tr>")
    out.append("</table>")
    out.append(f"<p>{len(callouts)} straggler verdict(s); deviation "
               "score is (p99 &minus; median of sibling p99s) / "
               "max(1.4826&middot;MAD, 5% of median, 1 ns).</p>")


def render_instances(rollup, out):
    active = [(g, op) for g, op in sorted(rollup.get("ops", {}).items())
              if op["merged"]["count"] > 0]
    if not active:
        return
    out.append("<h2>Per-instance deviation</h2>")
    for group, op in active:
        out.append(f"<h3>{html.escape(group)}</h3>")
        out.append('<table class="inst"><tr><th>instance</th><th>ops</th>'
                   "<th>p50 ms</th><th>p99 ms</th><th>score</th>"
                   "<th></th></tr>")
        peak_p99 = max(inst["p99_ns"]
                       for inst in op["instances"].values()) or 1
        for name, inst in sorted(op["instances"].items(),
                                 key=lambda kv: (len(kv[0]), kv[0])):
            frac = inst["p99_ns"] / peak_p99
            width = round(frac * 160)
            cls = ' class="bad"' if inst["straggler"] else ""
            out.append(
                f"<tr{cls}><td>{html.escape(name)}</td>"
                f"<td>{inst['count']}</td><td>{ms(inst['p50_ns'])}</td>"
                f"<td>{ms(inst['p99_ns'])}</td>"
                f"<td>{inst['score']:.1f}</td>"
                f'<td><span class="p99bar" '
                f'style="width:{width}px"></span></td></tr>')
        out.append("</table>")


CSS = """
body { font-family: sans-serif; margin: 1.5em; color: #222; }
h1 { border-bottom: 2px solid #1e5a9e; padding-bottom: 0.2em; }
table { border-collapse: collapse; margin: 0.5em 0; }
th, td { border: 1px solid #ccc; padding: 2px 8px; text-align: right;
         font-size: 13px; }
th { background: #eef2f7; text-align: left; }
table.heat td { border: none; width: 6px; height: 14px; padding: 0; }
table.heat th { font-family: monospace; font-size: 12px; }
tr.bad td { background: #fbe3e4; }
p.ok { color: #1a7a2e; }
span.bar { display: inline-block; width: 3px; background: #1e5a9e;
           margin-right: 1px; vertical-align: baseline; }
td.trend { text-align: left; }
span.p99bar { display: inline-block; height: 10px; background: #c0392b; }
"""


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("dump", help="BENCH_*.json produced by a bench run")
    parser.add_argument("--out", default="fleet_dashboard.html",
                        help="output HTML path"
                             " (default fleet_dashboard.html)")
    args = parser.parse_args()

    try:
        with open(args.dump) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"{args.dump}: {e}", file=sys.stderr)
        return 1
    rollup = doc.get("fleet_rollup")
    if not isinstance(rollup, dict):
        print(f"{args.dump}: no fleet_rollup section (rerun the bench; "
              "every writeBenchJson dump carries one)", file=sys.stderr)
        return 1

    bench = html.escape(str(doc.get("bench", "?")))
    reference = html.escape(str(doc.get("reference", "")))
    out = ["<!DOCTYPE html>", "<html><head>",
           '<meta charset="utf-8">',
           f"<title>fleet dashboard — {bench}</title>",
           f"<style>{CSS}</style>", "</head><body>",
           f"<h1>Fleet dashboard — {bench}</h1>",
           f"<p>{reference}</p>"]

    render_stragglers(rollup, out)
    render_ladder(rollup, out)
    if "timeseries" in doc:
        render_heatmap(doc["timeseries"], out)
        render_sparklines(doc["timeseries"], out)
    render_instances(rollup, out)

    rollups = doc.get("fleet_rollups")
    if isinstance(rollups, dict) and rollups:
        out.append("<h2>Sweep rollups</h2>")
        out.append('<table><tr><th>drives</th><th>op group</th>'
                   "<th>ops</th><th>p50 ms</th><th>p99 ms</th>"
                   "<th>stragglers</th></tr>")
        for count in sorted(rollups, key=int):
            for group, op in sorted(rollups[count].get("ops", {}).items()):
                merged = op["merged"]
                if merged["count"] == 0:
                    continue
                flagged = ", ".join(op["stragglers"]) or "—"
                out.append(f"<tr><td>{int(count)}</td>"
                           f"<td>{html.escape(group)}</td>"
                           f"<td>{merged['count']}</td>"
                           f"<td>{ms(percentile(merged, 50.0))}</td>"
                           f"<td>{ms(percentile(merged, 99.0))}</td>"
                           f"<td>{html.escape(flagged)}</td></tr>")
        out.append("</table>")

    out.append("</body></html>")
    with open(args.out, "w") as f:
        f.write("\n".join(out) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
