#!/usr/bin/env bash
# Project lint gate: invariant checker + clang-tidy (when available) +
# nasd_analyze coroutine-safety / determinism checks.
#
# Usage: tools/lint.sh [build-dir]
#
# The build dir must have been configured by the root CMakeLists (it
# exports compile_commands.json). clang-tidy is optional locally — the
# invariant checker and nasd_analyze always run — but CI treats a
# missing clang-tidy in its lint job as a failure.
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build}"
STATUS=0

echo "== check_invariants =="
if ! python3 "$ROOT/tools/check_invariants.py" "$ROOT"; then
    STATUS=1
fi

echo
echo "== clang-tidy =="
TIDY="${CLANG_TIDY:-clang-tidy}"
if command -v "$TIDY" > /dev/null 2>&1; then
    if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
        echo "no compile_commands.json under $BUILD_DIR;"
        echo "configure first: cmake -B \"$BUILD_DIR\" -S \"$ROOT\""
        STATUS=1
    else
        # Lint the library sources; headers are pulled in via
        # HeaderFilterRegex.
        FILES=$(find "$ROOT/src" -name '*.cc' | sort)
        if command -v run-clang-tidy > /dev/null 2>&1; then
            if ! run-clang-tidy -quiet -p "$BUILD_DIR" $FILES; then
                STATUS=1
            fi
        else
            for f in $FILES; do
                if ! "$TIDY" -p "$BUILD_DIR" --quiet "$f"; then
                    STATUS=1
                fi
            done
        fi
    fi
else
    echo "clang-tidy not found; skipping (set CLANG_TIDY to override)"
    if [ "${LINT_REQUIRE_TIDY:-0}" = "1" ]; then
        echo "LINT_REQUIRE_TIDY=1: treating missing clang-tidy as failure"
        STATUS=1
    fi
fi

echo
echo "== nasd_analyze =="
# The builtin backend needs no clang bindings; pass
# NASD_ANALYZE_BACKEND=libclang to cross-check with the AST overlay
# when python3-clang is installed.
if ! python3 "$ROOT/tools/nasd_analyze.py" --root "$ROOT" \
        --build-dir "$BUILD_DIR"; then
    STATUS=1
fi

exit $STATUS
