#!/usr/bin/env python3
"""AST-level coroutine-safety and sim-determinism analyzer for the NASD tree.

Every serious bug this repo has hit (the Semaphore::await_suspend
mid-suspend resume, the GCC coroutine prvalue double-destroy, the
refreshCaps UAF under suspended readers) was a coroutine-lifetime defect
that line-regexes cannot see. This tool parses the sources into a small
structural model — functions, parameters, lambdas with capture lists,
suspension points — and runs eight checks over it:

  A1 coro-ref-escape     Reference/pointer parameters and lambda
                         captures of a *detached* coroutine (one whose
                         Task is handed to Simulator::spawn, a schedule*
                         callback, or net::callWithDeadline) that are
                         used after a co_await suspension point. A
                         detached frame outlives its caller's scope, so
                         such references dangle — the PR-1/PR-3 UAF
                         class. Captures of a spawned coroutine lambda
                         are flagged outright: they live in the closure
                         temporary, which dies at the end of the spawn
                         expression (pass state as parameters instead).
  A2 discarded-task      A Task/awaitable-returning call whose result is
                         discarded: bare statement calls, (void)/static
                         _cast<void> casts, ternary statements — the
                         shapes [[nodiscard]] misses. A discarded lazy
                         Task silently never runs.
  A3 nondeterminism      Wall-clock and OS-entropy sources inside src/
                         (std::chrono::{system,steady,high_resolution}
                         _clock, rand/srand/random_device, std random
                         engines), iteration over pointer-keyed
                         unordered containers, pointer-keyed ordered
                         containers, and reinterpret_cast<uintptr_t>
                         pointer ordinals. All of these make event
                         timing or ordering depend on ASLR or the host
                         clock, breaking the bit-determinism every
                         benchmark baseline and seeded fault test
                         depends on. Use sim.now() and util::Rng.
  A4 raw-acquire         Raw Semaphore .acquire()/->acquire() and
                         manual .release() on a Semaphore-typed
                         receiver outside src/sim/. Queue waits must go
                         through sim::timedAcquire (attribution), and
                         releases through sim::ScopedPermit so early
                         returns and exceptions cannot leak permits.
                         This promotes invariant check #7 to the token
                         level: immune to comments/strings and aware of
                         ->acquire() chains the old regex missed.
  A5 missing-deadline    net::call<...> (the reliable transport) in a
                         file whose RPCs ride the unreliable data path
                         (src/nasd/client.cc, or any file marked with
                         `// nasd-analyze: unreliable-path`). A dropped
                         message would hang the caller forever; use
                         net::callWithDeadline.
  A6 raw-event-access    Direct manipulation of the simulator's event
                         queue outside src/sim/: touching the `events_`
                         / `wheel_` members, naming the pool-recycled
                         sim::EventNode type (a retained node pointer
                         dangles the moment the event fires), or
                         forging a sim::TimerHandle from explicit
                         index/generation values. Schedule through
                         Simulator::schedule*/scheduleCancelable and
                         cancel only with the returned handle — the
                         handle API is the only sanctioned way to
                         cancel.
  A7 silent-injection    A FaultPlan injection site (a `faults_*`
                         counter bump) or a Cheops version-fence
                         mutation (`++map_version`) in a function that
                         records no flight-recorder event. Every
                         control-plane transition must be journaled
                         (util/flight_recorder.h) or it is invisible
                         to tools/flight_report.py post-mortems.
                         Opt out with `// nasd-analyze:
                         no-flight-journal`.
  A8 reservoir-latency   A latency instrument backed by
                         util::SampleStats outside src/util/: a
                         SampleStats-typed declaration whose name
                         mentions latency, or a registry .histogram()
                         lookup whose path literal does. Reservoirs
                         subsample past capacity, so merging them is
                         inexact and fleet rollups over them misstate
                         the tail; latency paths must use
                         MetricsRegistry::latency() (LogHistogram:
                         O(1) record, exact merge).

Backends:
  * builtin (default)  — a self-contained C++ lexer + structural parser,
    deterministic everywhere, no dependencies. This is the backend CI
    gates on.
  * libclang           — clang.cindex over compile_commands.json for
    compiler-exact function/parameter/type boundaries; body analysis is
    shared with the builtin backend. Select with --backend libclang;
    if the bindings are absent the tool exits with an install hint
    (`pip install libclang` or `apt install python3-clang`).

Suppressions live in tools/analyze_baseline.json. Each entry must carry
a non-empty justification; findings match entries by a stable key
`CHECK:file:symbol` (never line numbers), printed with every finding.

File pragmas (ordinary comments, read before tokenizing):
  // nasd-analyze: sim-internal      exempt this file from A4 (the sim
                                     layer implements the primitives)
  // nasd-analyze: unreliable-path   subject this file to A5

Usage:
  tools/nasd_analyze.py [--root DIR] [--build-dir DIR] [files...]
  tools/nasd_analyze.py --format json --no-baseline tests/analyze_fixtures/a1_bad.cc

Exit status: 0 clean, 1 unsuppressed findings, 2 tool error.
"""

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

# --------------------------------------------------------------------------
# Tokenizer
# --------------------------------------------------------------------------

TOKEN_RE = re.compile(
    r"""
      (?P<ws>\s+)
    | (?P<block_comment>/\*.*?\*/)
    | (?P<line_comment>//[^\n]*)
    | (?P<raw_string>R"(?P<delim>[^()\s\\]{0,16})\((?s:.*?)\)(?P=delim)")
    | (?P<string>"(?:[^"\\\n]|\\.)*")
    | (?P<char>'(?:[^'\\\n]|\\.)*')
    | (?P<number>\.?\d(?:[\w.']|[eEpP][+-])*)
    | (?P<ident>[A-Za-z_]\w*)
    | (?P<punct>::|->|\+\+|--|<<=|>>=|<=>|<<|>>|<=|>=|==|!=|&&|\|\||\+=|-=|\*=|/=|%=|&=|\|=|\^=|\.\.\.|.)
    """,
    re.VERBOSE | re.DOTALL,
)


@dataclass
class Token:
    kind: str
    text: str
    line: int


def tokenize(text):
    """Lex C++ source into significant tokens (comments/ws stripped)."""
    tokens = []
    line = 1
    pos = 0
    end = len(text)
    while pos < end:
        m = TOKEN_RE.match(text, pos)
        if m is None:  # stray byte; skip it
            if text[pos] == "\n":
                line += 1
            pos += 1
            continue
        kind = m.lastgroup
        if kind == "delim":
            kind = "raw_string"
        s = m.group(0)
        if kind not in ("ws", "block_comment", "line_comment"):
            tokens.append(
                Token("string" if kind == "raw_string" else kind, s, line)
            )
        line += s.count("\n")
        pos = m.end()
    return tokens


# --------------------------------------------------------------------------
# Structural model
# --------------------------------------------------------------------------

OPEN_FOR = {"(": ")", "[": "]", "{": "}"}
CLOSE_FOR = {v: k for k, v in OPEN_FOR.items()}

# Keywords that precede '(' without being a callable/definition name.
CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "sizeof",
    "alignof", "decltype", "co_await", "co_return", "co_yield", "new",
    "delete", "throw", "case", "static_assert", "noexcept", "requires",
    "alignas", "default", "else", "do", "goto", "using", "typedef",
    "operator", "assert", "defined",
}

TYPE_KEYWORDS = {
    "const", "volatile", "struct", "class", "enum", "unsigned", "signed",
    "long", "short", "int", "char", "bool", "float", "double", "auto",
    "void", "typename", "constexpr", "mutable", "register", "inline",
}


def match_forward(tokens, i, open_t, close_t):
    """Index of the token closing tokens[i] (an `open_t`), or None."""
    depth = 0
    n = len(tokens)
    while i < n:
        t = tokens[i].text
        if t == open_t:
            depth += 1
        elif t == close_t:
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return None


def match_backward(tokens, i):
    """Index of the token opening the close-bracket at tokens[i]."""
    close = tokens[i].text
    open_t = CLOSE_FOR[close]
    depth = 0
    while i >= 0:
        t = tokens[i].text
        if t == close:
            depth += 1
        elif t == open_t:
            depth -= 1
            if depth == 0:
                return i
        i -= 1
    return None


def match_angle(tokens, i):
    """Close index of a template argument list opening at tokens[i] ('<').

    Heuristic: tracks <>, treats '>>' as two closes, bails on tokens that
    cannot appear in a type ('{', ';'). Returns None if unmatched.
    """
    depth = 0
    n = len(tokens)
    while i < n:
        t = tokens[i].text
        if t == "<":
            depth += 1
        elif t == ">":
            depth -= 1
            if depth == 0:
                return i
        elif t == ">>":
            depth -= 2
            if depth <= 0:
                return i
        elif t in ("{", ";", "&&", "||"):
            return None
        elif t == "(":
            j = match_forward(tokens, i, "(", ")")
            if j is None:
                return None
            i = j
        i += 1
    return None


@dataclass
class Param:
    name: str
    type_text: str
    is_ref: bool
    is_ptr: bool
    line: int


@dataclass
class Region:
    """A function definition or lambda body in the token stream."""

    kind: str  # "function" | "lambda"
    name: str  # function name, or enclosing function's name for lambdas
    line: int
    start: int  # token index of the region (name / '[')
    body_open: int  # '{' token index
    body_close: int  # '}' token index
    params: list = field(default_factory=list)
    # lambda-only:
    capture_default: str = ""  # "", "&", or "="
    ref_captures: list = field(default_factory=list)  # names captured by &
    value_captures: list = field(default_factory=list)
    # filled by the ownership pass:
    own: list = field(default_factory=list)  # token indices owned (no nested)
    is_coroutine: bool = False
    suspends: list = field(default_factory=list)  # own indices of co_await/yield
    escape: str = ""  # lambda-only: "", "spawn", "schedule", "deadline"


@dataclass
class FileModel:
    rel: str
    tokens: list
    regions: list
    pragmas: set


PRAGMA_RE = re.compile(r"//\s*nasd-analyze:\s*([\w-]+)")


def is_lambda_start(tokens, i):
    if i + 1 < len(tokens) and tokens[i + 1].text == "[":
        return False  # [[attribute]]
    if i == 0:
        return True
    prev = tokens[i - 1]
    if prev.kind in ("ident", "number", "string", "char"):
        return False
    if prev.text in (")", "]", "}", "["):
        return False
    return True


def parse_captures(tokens, lo, hi, region):
    """Parse a lambda capture list between '[' (lo) and ']' (hi)."""
    items, depth, cur = [], 0, []
    for i in range(lo + 1, hi):
        t = tokens[i]
        if t.text in OPEN_FOR or t.text == "<":
            depth += 1
        elif t.text in CLOSE_FOR or t.text == ">":
            depth -= 1
        if t.text == "," and depth == 0:
            items.append(cur)
            cur = []
        else:
            cur.append(t)
    if cur:
        items.append(cur)
    for item in items:
        texts = [t.text for t in item]
        if not texts:
            continue
        if texts == ["&"]:
            region.capture_default = "&"
        elif texts == ["="]:
            region.capture_default = "="
        elif texts[0] == "&" and len(texts) >= 2 and item[1].kind == "ident":
            region.ref_captures.append(texts[1])
        elif texts[0] == "this":
            region.ref_captures.append("this")
        elif item[0].kind == "ident":
            region.value_captures.append(texts[0])


LAMBDA_SPECIFIERS = {
    "mutable", "noexcept", "constexpr", "consteval", "static", "const",
}


def try_parse_lambda(tokens, i):
    """Parse a lambda starting at '[' (index i); None if not a lambda."""
    close = match_forward(tokens, i, "[", "]")
    if close is None:
        return None
    region = Region("lambda", "", tokens[i].line, i, -1, -1)
    parse_captures(tokens, i, close, region)
    j = close + 1
    n = len(tokens)
    if j < n and tokens[j].text == "<":  # template-head lambda
        k = match_angle(tokens, j)
        if k is None:
            return None
        j = k + 1
    if j < n and tokens[j].text == "(":
        pclose = match_forward(tokens, j, "(", ")")
        if pclose is None:
            return None
        region.params = parse_params(tokens, j + 1, pclose)
        j = pclose + 1
    # specifiers / trailing return type, then '{'
    guard = 0
    while j < n and guard < 128:
        t = tokens[j].text
        if t == "{":
            region.body_open = j
            end = match_forward(tokens, j, "{", "}")
            if end is None:
                return None
            region.body_close = end
            return region
        if t == "->" or t == "requires":
            j += 1
        elif tokens[j].kind == "ident" or t in ("::", "&", "*", "&&", ","):
            j += 1
        elif t == "<":
            k = match_angle(tokens, j)
            if k is None:
                return None
            j = k + 1
        elif t == "(":
            k = match_forward(tokens, j, "(", ")")
            if k is None:
                return None
            j = k + 1
        else:
            return None
        guard += 1
    return None


def parse_params(tokens, lo, hi):
    """Parse a parameter list between '(' (exclusive lo..hi) bounds."""
    parts, depth, cur = [], 0, []
    for i in range(lo, hi):
        t = tokens[i]
        if t.text in OPEN_FOR:
            depth += 1
        elif t.text in CLOSE_FOR:
            depth -= 1
        elif t.text == "<":
            k = match_angle(tokens, i)
            if k is not None and k < hi:
                depth += 1
        elif t.text in (">", ">>") and depth > 0:
            depth -= 2 if t.text == ">>" else 1
            depth = max(depth, 0)
        if t.text == "," and depth == 0:
            parts.append(cur)
            cur = []
        else:
            cur.append((i, t))
    if cur:
        parts.append(cur)

    params = []
    for part in parts:
        if not part:
            continue
        # strip a top-level default argument
        depth = 0
        cut = len(part)
        for k, (_, t) in enumerate(part):
            if t.text in OPEN_FOR or t.text == "<":
                depth += 1
            elif t.text in CLOSE_FOR or t.text in (">", ">>"):
                depth = max(depth - (2 if t.text == ">>" else 1), 0)
            elif t.text == "=" and depth == 0:
                cut = k
                break
        decl = part[:cut]
        if not decl:
            continue
        is_ref = is_ptr = False
        depth = 0
        for _, t in decl:
            if t.text in OPEN_FOR:
                depth += 1
            elif t.text in CLOSE_FOR:
                depth -= 1
            elif t.text == "<":
                depth += 1
            elif t.text in (">", ">>"):
                depth = max(depth - (2 if t.text == ">>" else 1), 0)
            elif depth == 0 and t.text in ("&", "&&"):
                is_ref = True
            elif depth == 0 and t.text == "*":
                is_ptr = True
        name = ""
        line = decl[0][1].line
        depth = 0
        for _, t in decl:
            if t.text in OPEN_FOR:
                depth += 1
            elif t.text in CLOSE_FOR:
                depth -= 1
            elif t.text == "<":
                depth += 1
            elif t.text in (">", ">>"):
                depth = max(depth - (2 if t.text == ">>" else 1), 0)
            elif (depth == 0 and t.kind == "ident"
                  and t.text not in TYPE_KEYWORDS):
                name = t.text  # last top-level identifier wins
                line = t.line
        type_text = " ".join(t.text for _, t in decl)
        params.append(Param(name, type_text, is_ref, is_ptr, line))
    return params


DEFINITION_DISALLOWED = {
    ";", "=", "?", "+", "-", "/", "%", "!", "|", "^", ")", "]", "}",
}


def definition_body_open(tokens, close_paren):
    """If tokens after a parameter ')' form a definition header, return
    the index of the body '{'; else None. Accepts const/noexcept/
    override/trailing-return/ctor-init shapes."""
    j = close_paren + 1
    n = len(tokens)
    guard = 0
    in_ctor_init = False
    while j < n and guard < 256:
        t = tokens[j].text
        if t == "{":
            return j
        if t == ":":
            in_ctor_init = True
        # A top-level ',' only belongs in a ctor-init list; anywhere
        # else it means the ')' closed a call argument, not a parameter
        # list (e.g. `sim::msec(5), [&]{...}` in an argument sequence).
        if t == "," and not in_ctor_init:
            return None
        if t in DEFINITION_DISALLOWED or tokens[j].kind in (
            "string", "char", "number"
        ):
            return None
        if t == "(":
            k = match_forward(tokens, j, "(", ")")
            if k is None:
                return None
            j = k + 1
        elif t == "<":
            k = match_angle(tokens, j)
            if k is None:
                return None
            j = k + 1
        elif t == "[":
            k = match_forward(tokens, j, "[", "]")
            if k is None:
                return None
            j = k + 1
        else:
            j += 1
        guard += 1
    return None


def find_regions(tokens):
    """One pass over the stream collecting function and lambda regions."""
    regions = []
    i = 0
    n = len(tokens)
    while i < n:
        t = tokens[i]
        if t.text == "[" and is_lambda_start(tokens, i):
            lam = try_parse_lambda(tokens, i)
            if lam is not None:
                regions.append(lam)
                i += 1  # descend: nested lambdas are separate regions
                continue
        if (
            t.kind == "ident"
            and t.text not in CONTROL_KEYWORDS
            and i + 1 < n
            and tokens[i + 1].text == "("
            and (i == 0 or tokens[i - 1].text not in (".", "->"))
        ):
            close = match_forward(tokens, i + 1, "(", ")")
            if close is not None:
                brace = definition_body_open(tokens, close)
                if brace is not None:
                    end = match_forward(tokens, brace, "{", "}")
                    if end is not None:
                        regions.append(
                            Region(
                                "function", t.text, t.line, i, brace, end,
                                params=parse_params(tokens, i + 2, close),
                            )
                        )
                        i = brace + 1  # descend for lambdas/local types
                        continue
        i += 1
    return regions


SUSPEND_KEYWORDS = {"co_await", "co_yield"}
COROUTINE_KEYWORDS = {"co_await", "co_yield", "co_return"}


def assign_ownership(model):
    """Compute each region's own-token set (body minus nested regions)
    and derive coroutine-ness / suspension points."""
    tokens = model.tokens
    regions = sorted(model.regions, key=lambda r: (r.body_open, -r.body_close))
    for r in regions:
        nested = [
            x
            for x in regions
            if x is not r
            and x.body_open > r.body_open
            and x.body_close < r.body_close
        ]
        covered = []
        for x in nested:
            covered.append((x.start if x.kind == "lambda" else x.body_open,
                            x.body_close))
        own = []
        for idx in range(r.body_open + 1, r.body_close):
            if any(lo <= idx <= hi for lo, hi in covered):
                continue
            own.append(idx)
        r.own = own
        r.suspends = [
            idx for idx in own if tokens[idx].text in SUSPEND_KEYWORDS
        ]
        r.is_coroutine = any(
            tokens[idx].text in COROUTINE_KEYWORDS for idx in own
        )
    # name lambdas after their nearest enclosing function
    for r in regions:
        if r.kind != "lambda":
            continue
        encl = enclosing_function(model, r.start)
        r.name = encl.name if encl is not None else "<file>"
    model.regions = regions


def enclosing_function(model, idx):
    best = None
    for r in model.regions:
        if r.kind != "function":
            continue
        if r.body_open <= idx <= r.body_close:
            if best is None or r.body_open > best.body_open:
                best = r
    return best


def enclosing_symbol(model, idx):
    best = None
    for r in model.regions:
        if r.body_open <= idx <= r.body_close:
            if best is None or r.body_open > best.body_open:
                best = r
    if best is None:
        return "<file>"
    return best.name if best.kind == "function" else best.name + ":lambda"


def build_file_model(rel, text):
    pragmas = set(PRAGMA_RE.findall(text))
    tokens = tokenize(text)
    model = FileModel(rel, tokens, find_regions(tokens), pragmas)
    assign_ownership(model)
    return model


# --------------------------------------------------------------------------
# Findings and global context
# --------------------------------------------------------------------------


@dataclass
class Finding:
    check: str
    file: str
    line: int
    symbol: str
    message: str
    hint: str

    @property
    def key(self):
        return f"{self.check}:{self.file}:{self.symbol}"


# Call sinks whose callback/Task outlives the calling scope.
SPAWN_SINKS = {"spawn"}
SCHEDULE_SINKS = {
    "schedule", "scheduleIn", "scheduleCancelable", "scheduleCancelableIn",
}
DEADLINE_SINKS = {"callWithDeadline"}

# Files whose RPCs ride the unreliable data path (A5), repo-relative.
DEADLINE_ONLY_FILES = {"src/nasd/client.cc"}


@dataclass
class GlobalInfo:
    task_names: set = field(default_factory=set)
    void_names: set = field(default_factory=set)  # declared `void f(`
    detached_fns: set = field(default_factory=set)
    semaphore_names: set = field(default_factory=set)


def collect_globals(models):
    info = GlobalInfo()
    for model in models:
        tokens = model.tokens
        n = len(tokens)
        info.semaphore_names |= collect_semaphore_names(tokens)
        # Task-returning callables: `Task < ... > name (`
        for i, t in enumerate(tokens):
            if (
                t.text == "void"
                and i + 2 < n
                and tokens[i + 1].kind == "ident"
                and tokens[i + 2].text == "("
            ):
                # A name also declared returning void is ambiguous for
                # A2 (e.g. Gate::open vs AfsClient::open); member-call
                # receivers cannot be type-resolved at token level.
                info.void_names.add(tokens[i + 1].text)
            if t.text != "Task" or i + 1 >= n or tokens[i + 1].text != "<":
                continue
            close = match_angle(tokens, i + 1)
            if close is None or close + 2 >= n:
                continue
            if (
                tokens[close + 1].kind == "ident"
                and tokens[close + 2].text == "("
                and tokens[close + 1].text not in CONTROL_KEYWORDS
            ):
                info.task_names.add(tokens[close + 1].text)
        # Detached coroutines: a direct call `spawn(ns::fn(...)` marks fn.
        for i, t in enumerate(tokens):
            if t.text not in SPAWN_SINKS or i + 1 >= n:
                continue
            if tokens[i + 1].text != "(":
                continue
            j = i + 2
            last_ident = None
            while j < n:
                tk = tokens[j]
                if tk.kind == "ident":
                    last_ident = tk.text
                    j += 1
                elif tk.text == "::":
                    j += 1
                elif tk.text == "<":
                    k = match_angle(tokens, j)
                    if k is None:
                        break
                    j = k + 1
                elif tk.text == "(":
                    if last_ident and last_ident not in (
                        "move", "forward",
                    ):
                        info.detached_fns.add(last_ident)
                    break
                else:
                    break
    return info


def lambda_escape_context(model, region):
    """Classify how a lambda leaves its scope: handed to spawn/schedule*
    ('spawn'/'schedule'), to callWithDeadline ('deadline'), or not
    ('')."""
    tokens = model.tokens
    i = region.start - 1
    depth = 0
    # Walk back past sibling arguments to the nearest unbalanced '('.
    while i >= 0 and region.start - i < 4096:
        t = tokens[i].text
        if t in (")", "]", "}"):
            j = match_backward(tokens, i)
            if j is None:
                return ""
            i = j - 1
            continue
        if t == "(":
            if depth == 0:
                # Allow an explicit template argument list between the
                # callee and its '(': `callWithDeadline<Reply>(...)`.
                k = i - 1
                if k >= 0 and tokens[k].text in (">", ">>"):
                    adepth = 2 if tokens[k].text == ">>" else 1
                    k -= 1
                    while k >= 0 and adepth > 0:
                        tt = tokens[k].text
                        if tt in (">", ">>"):
                            adepth += 2 if tt == ">>" else 1
                        elif tt == "<":
                            adepth -= 1
                        elif tt in (";", "{", "}", ")"):
                            return ""
                        k -= 1
                callee = tokens[k] if k >= 0 else None
                if callee is not None and callee.kind == "ident":
                    if callee.text in SPAWN_SINKS:
                        return "spawn"
                    if callee.text in SCHEDULE_SINKS:
                        return "schedule"
                    if callee.text in DEADLINE_SINKS:
                        return "deadline"
                return ""
            depth -= 1
        elif t in ("{", ";"):
            return ""
        i -= 1
    return ""


# --------------------------------------------------------------------------
# Checks (shared by both backends)
# --------------------------------------------------------------------------


def first_use_after_suspend(model, region, name):
    """Own-token index of the first use of `name` after the statement
    containing the region's first suspension point, or None.

    The boundary is the first ';' *after* the first co_await: a use
    inside the same statement as the suspension has not yet crossed it.
    Loop-carried uses inside a single statement are not modeled.
    """
    if not region.suspends:
        return None
    tokens = model.tokens
    boundary = None
    for idx in region.own:
        if idx > region.suspends[0] and tokens[idx].text == ";":
            boundary = idx
            break
    if boundary is None:
        return None
    for idx in region.own:
        if idx <= boundary:
            continue
        t = tokens[idx]
        if t.kind != "ident" or t.text != name:
            continue
        prev = tokens[idx - 1] if idx > 0 else None
        if prev is not None and prev.text in (".", "->", "::"):
            continue  # member/namespace of something else
        return idx
    return None


def check_a1(model, ginfo, findings):
    tokens = model.tokens
    for r in model.regions:
        if not r.is_coroutine:
            continue
        if r.kind == "function":
            if r.name not in ginfo.detached_fns:
                continue
            for p in r.params:
                if not (p.is_ref or p.is_ptr) or not p.name:
                    continue
                use = first_use_after_suspend(model, r, p.name)
                if use is None:
                    continue
                kind = "reference" if p.is_ref else "pointer"
                findings.append(Finding(
                    "A1", model.rel, tokens[use].line,
                    f"{r.name}:{p.name}",
                    f"{kind} parameter '{p.name}' of detached coroutine "
                    f"'{r.name}' used after a co_await suspension point",
                    "the spawned frame outlives the caller; pass by "
                    "value (or shared_ptr), or prove the referent "
                    "outlives every suspension and baseline this",
                ))
        else:  # lambda
            r.escape = lambda_escape_context(model, r)
            if not r.escape:
                continue
            if r.escape in ("spawn", "schedule"):
                if (r.capture_default or r.ref_captures
                        or r.value_captures):
                    findings.append(Finding(
                        "A1", model.rel, r.line,
                        f"{r.name}:lambda-captures",
                        "captures of a spawned coroutine lambda live in "
                        "the closure temporary, which is destroyed at "
                        "the end of the spawn expression",
                        "pass state as explicit parameters of the "
                        "lambda instead of capturing",
                    ))
                for p in r.params:
                    if not (p.is_ref or p.is_ptr) or not p.name:
                        continue
                    use = first_use_after_suspend(model, r, p.name)
                    if use is None:
                        continue
                    findings.append(Finding(
                        "A1", model.rel, tokens[use].line,
                        f"{r.name}:lambda:{p.name}",
                        f"reference parameter '{p.name}' of a spawned "
                        "coroutine lambda used after a co_await "
                        "suspension point",
                        "the detached frame may outlive the referent; "
                        "pass by value or prove lifetime and baseline",
                    ))
            elif r.escape == "deadline":
                if r.capture_default == "&" or r.ref_captures:
                    names = ", ".join(r.ref_captures) or "[&]"
                    findings.append(Finding(
                        "A1", model.rel, r.line,
                        f"{r.name}:deadline-ref-capture",
                        "handler lambda for callWithDeadline captures "
                        f"by reference ({names}); a timed-out caller's "
                        "frame dies while the handler keeps running",
                        "capture by value via a named handler factory "
                        "(see NasdClient's MakeFn idiom)",
                    ))


DISCARD_STMT_PREV = {";", "{", "}", "else", "do", ")", "?", ":"}


def chain_start(tokens, i):
    """Given a call at tokens[i] (identifier), walk back over a member
    chain `a.b(x).c` to the index where the full expression starts."""
    s = i
    while s >= 1 and tokens[s - 1].text in (".", "->"):
        r = s - 2
        if r >= 0 and tokens[r].text in (")", "]"):
            o = match_backward(tokens, r)
            if o is None:
                return s
            r = o - 1
            if r >= 0 and tokens[r].kind == "ident":
                s = r
            else:
                return o
        elif r >= 0 and tokens[r].kind == "ident":
            s = r
        else:
            return s - 1
    return s


def check_a2(model, ginfo, findings):
    tokens = model.tokens
    n = len(tokens)
    flaggable = ginfo.task_names - ginfo.void_names
    for i, t in enumerate(tokens):
        if t.kind != "ident" or t.text not in flaggable:
            continue
        if i + 1 >= n or tokens[i + 1].text != "(":
            continue
        close = match_forward(tokens, i + 1, "(", ")")
        if close is None or close + 1 >= n:
            continue
        # Plain discard ends `);`; a cast-wrapped discard like
        # `static_cast<void>(f());` ends `));` — the extra ')' is the
        # cast's, verified by the static_cast_void shape test below.
        if tokens[close + 1].text == ";":
            pass
        elif (tokens[close + 1].text == ")" and close + 2 < n
                and tokens[close + 2].text == ";"):
            pass
        else:
            continue
        s = chain_start(tokens, i)
        prev = tokens[s - 1] if s >= 1 else None
        # (void) f(...);  /  static_cast<void>(f(...));
        cast_void = (
            s >= 3
            and tokens[s - 1].text == ")"
            and tokens[s - 2].text == "void"
            and tokens[s - 3].text == "("
        )
        static_cast_void = (
            s >= 5
            and tokens[s - 1].text == "("
            and tokens[s - 2].text == ">"
            and tokens[s - 3].text == "void"
            and tokens[s - 4].text == "<"
            and tokens[s - 5].text == "static_cast"
        )
        if static_cast_void and close + 2 < n:
            # actual terminator is `) ;` after the cast close
            pass
        stmt_start = prev is None or prev.text in DISCARD_STMT_PREV
        if prev is not None and prev.text == ")" and not cast_void:
            # distinguish `if (c) f();` from `g(...) f();` (impossible);
            # keep ')' as statement-start (if/for/while bodies)
            stmt_start = True
        if not (stmt_start or cast_void or static_cast_void):
            continue
        # `spawn(...)` / `co_await ...` shapes never reach here: their
        # call is not in statement position or is consumed.
        sym = enclosing_symbol(model, i)
        shape = "discarded"
        if cast_void:
            shape = "(void)-cast"
        elif static_cast_void:
            shape = "static_cast<void>-cast"
        findings.append(Finding(
            "A2", model.rel, t.line, f"{sym}:{t.text}",
            f"{shape} call to Task-returning '{t.text}': a lazy Task "
            "that is never awaited never runs",
            "co_await the call, or hand it to sim.spawn(...)",
        ))


BANNED_TIME = {
    "system_clock", "steady_clock", "high_resolution_clock",
    "gettimeofday", "clock_gettime", "timespec_get",
}
BANNED_RANDOM = {
    "random_device", "mt19937", "mt19937_64", "default_random_engine",
    "minstd_rand", "minstd_rand0", "ranlux24", "ranlux48", "arc4random",
    "getrandom", "srand", "srandom", "random_shuffle",
}
UNORDERED_CONTAINERS = {"unordered_map", "unordered_set",
                        "unordered_multimap", "unordered_multiset"}
ORDERED_CONTAINERS = {"map", "set", "multimap", "multiset"}


def first_template_arg_has_top_level_ptr(tokens, lt, gt):
    depth = 0
    for i in range(lt + 1, gt):
        t = tokens[i].text
        if t in ("<",) or t in OPEN_FOR:
            depth += 1
        elif t in (">", ">>") or t in CLOSE_FOR:
            depth = max(depth - (2 if t == ">>" else 1), 0)
        elif t == "," and depth == 0:
            return False  # end of first argument
        elif t == "*" and depth == 0:
            return True
    return False


def check_a3(model, findings):
    tokens = model.tokens
    n = len(tokens)
    ptr_keyed_unordered = set()
    for i, t in enumerate(tokens):
        if t.kind != "ident":
            continue
        sym = None
        if t.text in BANNED_TIME:
            sym = enclosing_symbol(model, i)
            findings.append(Finding(
                "A3", model.rel, t.line, f"{sym}:{t.text}",
                f"wall-clock source '{t.text}' in simulator code",
                "simulated time must come from sim.now(); wall time "
                "makes runs non-reproducible",
            ))
        elif t.text in BANNED_RANDOM:
            sym = enclosing_symbol(model, i)
            findings.append(Finding(
                "A3", model.rel, t.line, f"{sym}:{t.text}",
                f"OS-entropy / unseeded randomness '{t.text}'",
                "draw from an explicitly seeded util::Rng so runs are "
                "reproducible bit-for-bit",
            ))
        elif t.text == "rand" and i + 1 < n and tokens[i + 1].text == "(":
            prev = tokens[i - 1] if i > 0 else None
            if prev is None or prev.text not in (".", "->"):
                sym = enclosing_symbol(model, i)
                findings.append(Finding(
                    "A3", model.rel, t.line, f"{sym}:rand",
                    "call to rand(): global, platform-dependent stream",
                    "draw from an explicitly seeded util::Rng",
                ))
        elif t.text == "reinterpret_cast" and i + 2 < n:
            if tokens[i + 1].text == "<" and tokens[i + 2].text in (
                "uintptr_t", "intptr_t", "std",
            ):
                k = match_angle(tokens, i + 1)
                inner = " ".join(
                    x.text for x in tokens[i + 2 : k or i + 2]
                )
                if "intptr_t" in inner:
                    sym = enclosing_symbol(model, i)
                    findings.append(Finding(
                        "A3", model.rel, t.line, f"{sym}:intptr-ordinal",
                        "pointer converted to an integer ordinal; "
                        "address-derived values differ across runs "
                        "under ASLR",
                        "key on a stable id (node name, object id) "
                        "instead of the address",
                    ))
        elif t.text in UNORDERED_CONTAINERS or t.text in ORDERED_CONTAINERS:
            if i + 1 >= n or tokens[i + 1].text != "<":
                continue
            gt = match_angle(tokens, i + 1)
            if gt is None:
                continue
            if not first_template_arg_has_top_level_ptr(tokens, i + 1, gt):
                continue
            if t.text in ORDERED_CONTAINERS:
                sym = enclosing_symbol(model, i)
                findings.append(Finding(
                    "A3", model.rel, t.line, f"{sym}:{t.text}-ptr-key",
                    f"pointer-keyed std::{t.text}: iteration order is "
                    "the address order, which varies across runs under "
                    "ASLR",
                    "key on a stable id, or use an unordered container "
                    "and never iterate it",
                ))
            else:
                # record the declared name; iterating it is the defect
                j = gt + 1
                while j < n and tokens[j].text in ("&", "*", "const"):
                    j += 1
                if j < n and tokens[j].kind == "ident":
                    ptr_keyed_unordered.add(tokens[j].text)
    if not ptr_keyed_unordered:
        return
    for i, t in enumerate(tokens):
        if t.kind != "ident" or t.text not in ptr_keyed_unordered:
            continue
        nxt = tokens[i + 1] if i + 1 < n else None
        prev = tokens[i - 1] if i > 0 else None
        iterated = False
        if prev is not None and prev.text == ":" and nxt is not None \
                and nxt.text == ")":
            # `for (... : container)`
            iterated = True
        if nxt is not None and nxt.text in (".", "->") and i + 2 < n \
                and tokens[i + 2].text in ("begin", "cbegin", "rbegin"):
            iterated = True
        if iterated:
            sym = enclosing_symbol(model, i)
            findings.append(Finding(
                "A3", model.rel, t.line, f"{sym}:iterate:{t.text}",
                f"iteration over pointer-keyed unordered container "
                f"'{t.text}': visit order depends on addresses and "
                "hash seeding, so any event scheduled from this loop "
                "is ordered non-deterministically",
                "iterate a stable-order index (vector of ids) and look "
                "entries up, or key the container on a stable id",
            ))


def collect_semaphore_names(tokens):
    names = set()
    n = len(tokens)
    for i, t in enumerate(tokens):
        if t.text != "Semaphore":
            continue
        j = i + 1
        if j < n and tokens[j].text == "<":
            k = match_angle(tokens, j)
            if k is None:
                continue
            j = k + 1
        while j < n and tokens[j].text in ("&", "*", "const", ">", ">>"):
            j += 1
        if j < n and tokens[j].kind == "ident":
            names.add(tokens[j].text)
        # also `vector<unique_ptr<Semaphore>> name`: scan forward past
        # closing angles to the declarator identifier
        k = j
        closes = 0
        while k < n and closes < 4 and tokens[k].text in (">", ">>"):
            closes += 1
            k += 1
        if k < n and tokens[k].kind == "ident":
            names.add(tokens[k].text)
    return names


def chain_idents(tokens, i):
    """All identifiers in the member chain ending at tokens[i]
    (exclusive), e.g. `src.tx().release` -> ['src', 'tx']."""
    s = chain_start(tokens, i)
    return [
        tokens[k].text
        for k in range(s, i)
        if tokens[k].kind == "ident"
    ]


def collect_permit_names(tokens):
    """Names bound to a sim::ScopedPermit in this file.

    Covers `ScopedPermit name` / `sim::ScopedPermit name` declarations
    and both forms of binding the result of scopedAcquire():

        auto name = co_await sim::scopedAcquire(...);
        name = co_await sim::scopedAcquire(...);   // rebind

    Explicit .release() on a permit is the sanctioned way to pin the
    release point (ordering-sensitive sites), so A4 must not flag it
    even when the local shares its name with a Semaphore accessor.
    """
    names = set()
    for i, t in enumerate(tokens):
        if t.kind != "ident":
            continue
        if t.text == "ScopedPermit":
            if i + 1 < len(tokens) and tokens[i + 1].kind == "ident":
                names.add(tokens[i + 1].text)
        elif t.text == "scopedAcquire" and i >= 5:
            if (tokens[i - 1].text == "::"
                    and tokens[i - 2].text == "sim"
                    and tokens[i - 3].text == "co_await"
                    and tokens[i - 4].text == "="
                    and tokens[i - 5].kind == "ident"):
                names.add(tokens[i - 5].text)
    return names


def check_a4(model, ginfo, findings):
    if "sim-internal" in model.pragmas or model.rel.startswith("src/sim/"):
        return
    tokens = model.tokens
    n = len(tokens)
    permit_names = collect_permit_names(tokens)
    for i, t in enumerate(tokens):
        if t.kind != "ident" or i == 0 or i + 1 >= n:
            continue
        if tokens[i + 1].text != "(":
            continue
        prev = tokens[i - 1].text
        if prev not in (".", "->"):
            continue
        if t.text == "acquire":
            chain = chain_idents(tokens, i) or ["?"]
            root = chain[0]
            sym = enclosing_symbol(model, i)
            findings.append(Finding(
                "A4", model.rel, t.line, f"{sym}:acquire:{root}",
                f"raw Semaphore acquire on '{root}' outside src/sim",
                "co_await sim::timedAcquire(sim, sem) so queue time is "
                "measured and attributable to the op's latency "
                "breakdown",
            ))
        elif t.text == "release":
            chain = chain_idents(tokens, i)
            # Semaphore-typed receivers only (declarations collected
            # across every analyzed file): Task::release,
            # unique_ptr::release etc. pass through untouched.
            hits = [c for c in chain if c in ginfo.semaphore_names]
            if not hits:
                continue
            if chain and chain[0] in permit_names:
                continue  # explicit ScopedPermit::release() is the fix
            sym = enclosing_symbol(model, i)
            findings.append(Finding(
                "A4", model.rel, t.line, f"{sym}:release:{hits[-1]}",
                f"manual Semaphore release on '{hits[-1]}' outside "
                "src/sim",
                "hold a sim::ScopedPermit (from sim::scopedAcquire) so "
                "early returns and exceptions cannot leak the permit",
            ))


def check_a5(model, findings):
    applies = (
        model.rel in DEADLINE_ONLY_FILES
        or "unreliable-path" in model.pragmas
    )
    if not applies:
        return
    tokens = model.tokens
    n = len(tokens)
    for i, t in enumerate(tokens):
        if t.text != "call" or t.kind != "ident":
            continue
        if i >= 2 and tokens[i - 1].text == "::" \
                and tokens[i - 2].text == "net" \
                and i + 1 < n and tokens[i + 1].text == "<":
            sym = enclosing_symbol(model, i)
            findings.append(Finding(
                "A5", model.rel, t.line, f"{sym}:net::call",
                "deadline-free net::call on the unreliable data path: "
                "a dropped message hangs the caller forever",
                "use net::callWithDeadline so a lost RPC surfaces as "
                "RpcStatus::kTimeout",
            ))


def check_a6(model, findings):
    """Ban direct event-queue access outside the sim layer itself."""
    if "sim-internal" in model.pragmas or model.rel.startswith("src/sim/"):
        return
    tokens = model.tokens
    n = len(tokens)
    for i, t in enumerate(tokens):
        if t.kind != "ident":
            continue
        if t.text in ("events_", "wheel_"):
            sym = enclosing_symbol(model, i)
            findings.append(Finding(
                "A6", model.rel, t.line, f"{sym}:{t.text}",
                f"direct access to the simulator's event queue "
                f"('{t.text}') outside src/sim",
                "schedule through Simulator::schedule/scheduleIn or "
                "scheduleCancelable; cancellation goes through the "
                "returned sim::TimerHandle only",
            ))
        elif t.text == "EventNode":
            sym = enclosing_symbol(model, i)
            findings.append(Finding(
                "A6", model.rel, t.line, f"{sym}:EventNode",
                "raw event-node use outside src/sim: nodes are "
                "pool-recycled the moment their event fires or is "
                "cancelled, so a retained pointer dangles",
                "hold the sim::TimerHandle returned by "
                "scheduleCancelable instead; generation counters make "
                "a stale handle a safe no-op",
            ))
        elif t.text == "TimerHandle":
            # Storing or default-initializing a handle is the sanctioned
            # pattern (`sim::TimerHandle h;`); forging one from explicit
            # index/generation values bypasses the generation contract.
            j = i + 1
            if j < n and tokens[j].kind == "ident":
                j += 1  # declarator name
            if (j + 1 < n and tokens[j].text in ("{", "(")
                    and tokens[j + 1].text not in ("}", ")")):
                sym = enclosing_symbol(model, i)
                findings.append(Finding(
                    "A6", model.rel, t.line, f"{sym}:TimerHandle",
                    "sim::TimerHandle forged from explicit values "
                    "outside src/sim: only handles returned by "
                    "scheduleCancelable carry a valid generation",
                    "store the handle scheduleCancelable returned; a "
                    "default-constructed handle is the correct "
                    "'no timer armed' state",
                ))


A7_FAULT_COUNTERS = ("faults_dropped", "faults_duplicated", "faults_delayed")


def check_a7(model, findings):
    """Fault injections and version fences must journal an FrEvent.

    The flight recorder's contract is that every control-plane
    transition is captured: a FaultPlan injection site (a `faults_*`
    counter bump) or a Cheops version-fence mutation (`++map_version`)
    whose enclosing function records no flight-recorder event is
    invisible to tools/flight_report.py, which defeats the journal's
    purpose as the post-mortem source of truth.
    """
    if "no-flight-journal" in model.pragmas:
        return
    tokens = model.tokens
    n = len(tokens)
    for region in model.regions:
        if region.body_open < 0 or region.body_close < 0:
            continue
        # An emit anywhere in the function's textual extent (including
        # nested lambdas) satisfies the contract.
        has_emit = any(
            tokens[j].kind == "ident" and tokens[j].text == "FrEvent"
            for j in range(region.body_open, region.body_close + 1)
        )
        if has_emit:
            continue
        # Anchors come from the region's own tokens so a mutation in a
        # nested lambda is charged to the lambda, not twice.
        for j in region.own:
            t = tokens[j]
            if t.kind != "ident":
                continue
            anchor = None
            if t.text == "map_version":
                nxt = tokens[j + 1].text if j + 1 < n else ""
                bumped = nxt in ("++", "+=") or any(
                    tokens[k].text == "++" for k in range(max(0, j - 4), j)
                )
                if bumped:
                    anchor = "map_version"
            elif t.text in A7_FAULT_COUNTERS:
                if (j + 2 < n and tokens[j + 1].text == "."
                        and tokens[j + 2].text == "add"):
                    anchor = t.text
            if anchor is None:
                continue
            sym = enclosing_symbol(model, j)
            findings.append(Finding(
                "A7", model.rel, t.line, f"{sym}:{anchor}",
                f"'{anchor}' mutated with no flight-recorder event in "
                "the enclosing function: the injection/fence is "
                "invisible to the journal",
                "record a util::FrEvent on the owning node's "
                "FlightJournal next to the mutation "
                "(node.flightJournal().record(...))",
            ))


def check_a8(model, findings):
    """Latency instruments outside src/util must be LogHistogram.

    A SampleStats reservoir subsamples past its capacity, so merging
    two reservoirs is not exact and fleet rollups built on them lie
    about the tail. MetricsRegistry::latency() (util::LogHistogram)
    merges exactly and is the only sanctioned latency instrument
    outside src/util/. Flag (a) a SampleStats-typed declaration whose
    name mentions latency, and (b) a registry `.histogram(...)` lookup
    whose path literal names a latency instrument — both should be
    `latency()` / LogHistogram.
    """
    if model.rel.startswith("src/util/"):
        return
    tokens = model.tokens
    n = len(tokens)
    for i, t in enumerate(tokens):
        if t.kind != "ident":
            continue
        if t.text == "SampleStats":
            j = i + 1
            while j < n and tokens[j].text in ("&", "*", "const"):
                j += 1
            if (j < n and tokens[j].kind == "ident"
                    and "latency" in tokens[j].text.lower()):
                sym = enclosing_symbol(model, i)
                findings.append(Finding(
                    "A8", model.rel, t.line, f"{sym}:{tokens[j].text}",
                    f"SampleStats latency instrument '{tokens[j].text}' "
                    "outside src/util: reservoir subsampling makes "
                    "merges inexact, so fleet rollups over it misstate "
                    "the tail",
                    "use util::LogHistogram via "
                    "MetricsRegistry::latency(path) — O(1) record, "
                    "exact merge, <5% relative error",
                ))
        elif (t.text == "histogram" and i + 1 < n
                and tokens[i + 1].text == "("
                and i > 0 and tokens[i - 1].text in (".", "->")):
            close = match_forward(tokens, i + 1, "(", ")")
            if close is None:
                continue
            for j in range(i + 2, close):
                if (tokens[j].kind == "string"
                        and "latency" in tokens[j].text):
                    sym = enclosing_symbol(model, i)
                    findings.append(Finding(
                        "A8", model.rel, tokens[j].line,
                        f"{sym}:histogram:latency",
                        "latency path registered through .histogram() "
                        "(SampleStats) outside src/util: the reservoir "
                        "cannot be merged exactly across the fleet",
                        "register the path with .latency() "
                        "(util::LogHistogram) instead",
                    ))
                    break


CHECKS = {
    "A1": "coro-ref-escape",
    "A2": "discarded-task",
    "A3": "nondeterminism",
    "A4": "raw-acquire",
    "A5": "missing-deadline",
    "A6": "raw-event-access",
    "A7": "silent-injection",
    "A8": "reservoir-latency",
}


def run_checks(models, checks):
    ginfo = collect_globals(models)
    findings = []
    for model in models:
        if "A1" in checks:
            check_a1(model, ginfo, findings)
        if "A2" in checks:
            check_a2(model, ginfo, findings)
        if "A3" in checks:
            check_a3(model, findings)
        if "A4" in checks:
            check_a4(model, ginfo, findings)
        if "A5" in checks:
            check_a5(model, findings)
        if "A6" in checks:
            check_a6(model, findings)
        if "A7" in checks:
            check_a7(model, findings)
        if "A8" in checks:
            check_a8(model, findings)
    return findings


# --------------------------------------------------------------------------
# libclang backend (optional): compiler-exact region/parameter extraction
# --------------------------------------------------------------------------

LIBCLANG_HINT = (
    "libclang python bindings not available.\n"
    "Install them with one of:\n"
    "    pip install libclang        # bundles a shared library\n"
    "    apt-get install python3-clang libclang1\n"
    "or run with --backend builtin (the default, no dependencies)."
)


def load_cindex():
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        return None
    try:
        cindex.Index.create()
    except Exception:
        lib = os.environ.get("NASD_LIBCLANG")
        if lib:
            try:
                cindex.Config.set_library_file(lib)
                cindex.Index.create()
            except Exception:
                return None
        else:
            return None
    return cindex


def compile_args_for(cc_db, path, root):
    args = ["-std=c++20", "-x", "c++", f"-I{root}/src"]
    if cc_db is None:
        return args
    try:
        cmds = cc_db.getCompileCommands(str(path))
    except Exception:
        cmds = None
    if not cmds:
        return args
    raw = list(cmds[0].arguments)
    out, skip = [], False
    for a in raw[1:]:  # drop the compiler itself
        if skip:
            skip = False
            continue
        if a in ("-c", str(path)):
            continue
        if a == "-o":
            skip = True
            continue
        out.append(a)
    return out or args


def build_models_libclang(cindex, root, build_dir, paths):
    """Parse with libclang; reuse the shared token machinery for bodies.

    Regions come from cursor extents (compiler-exact), parameters from
    PARM_DECL cursors with real types; suspension points and body token
    sets still come from the shared tokenizer, keyed by line ranges.
    """
    try:
        cc_db = cindex.CompilationDatabase.fromDirectory(str(build_dir))
    except Exception:
        cc_db = None
    index = cindex.Index.create()
    models = []
    for path in paths:
        rel = os.path.relpath(path, root)
        text = Path(path).read_text()
        model = build_file_model(rel, text)  # token layer is shared
        try:
            tu = index.parse(
                str(path), args=compile_args_for(cc_db, path, root)
            )
            refine_model_with_ast(cindex, tu, path, model)
        except Exception as e:  # fall back to builtin regions
            print(
                f"nasd-analyze: libclang parse failed for {rel} ({e}); "
                "using builtin parser for this file",
                file=sys.stderr,
            )
        models.append(model)
    return models


def refine_model_with_ast(cindex, tu, path, model):
    """Overlay compiler-exact parameter ref/pointer-ness onto the
    builtin model's regions (matched by name + line)."""
    CursorKind = cindex.CursorKind
    TypeKind = cindex.TypeKind
    by_key = {}
    for r in model.regions:
        if r.kind == "function":
            by_key.setdefault((r.name, r.line), r)

    def visit(cursor):
        for c in cursor.get_children():
            try:
                loc_file = c.location.file
            except Exception:
                loc_file = None
            if loc_file is not None and str(loc_file) != str(path):
                continue
            if c.kind in (
                CursorKind.FUNCTION_DECL,
                CursorKind.CXX_METHOD,
                CursorKind.CONSTRUCTOR,
                CursorKind.FUNCTION_TEMPLATE,
            ) and c.is_definition():
                region = by_key.get((c.spelling, c.location.line))
                if region is not None:
                    params = []
                    for p in c.get_children():
                        if p.kind != CursorKind.PARM_DECL:
                            continue
                        k = p.type.kind
                        params.append(Param(
                            p.spelling or "",
                            p.type.spelling,
                            k in (TypeKind.LVALUEREFERENCE,
                                  TypeKind.RVALUEREFERENCE),
                            k == TypeKind.POINTER,
                            p.location.line,
                        ))
                    if params:
                        region.params = params
            visit(c)

    visit(tu.cursor)


# --------------------------------------------------------------------------
# Baseline
# --------------------------------------------------------------------------


def load_baseline(path):
    try:
        data = json.loads(Path(path).read_text())
    except FileNotFoundError:
        return {}, []
    except json.JSONDecodeError as e:
        print(f"nasd-analyze: bad baseline JSON {path}: {e}",
              file=sys.stderr)
        sys.exit(2)
    entries = {}
    errors = []
    for e in data.get("entries", []):
        check = e.get("check", "")
        file_ = e.get("file", "")
        symbol = e.get("symbol", "")
        just = (e.get("justification") or "").strip()
        key = f"{check}:{file_}:{symbol}"
        if not (check and file_ and symbol):
            errors.append(f"baseline entry missing check/file/symbol: {e}")
            continue
        if len(just) < 20:
            errors.append(
                f"baseline entry {key} needs a real justification "
                "(>= 20 chars explaining why the finding is safe)"
            )
            continue
        entries[key] = e
    return entries, errors


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------


def discover_sources(root):
    paths = []
    for ext in ("*.cc", "*.h"):
        paths.extend(sorted((root / "src").rglob(ext)))
    return paths


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="AST-level coroutine-safety and sim-determinism "
        "analyzer (checks A1-A8; see module docstring)",
    )
    ap.add_argument("files", nargs="*", help="files to analyze "
                    "(default: all of src/ under --root)")
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of this script)")
    ap.add_argument("--build-dir", default=None,
                    help="build dir holding compile_commands.json "
                    "(libclang backend; default: ROOT/build)")
    ap.add_argument("--backend", choices=("builtin", "libclang"),
                    default=os.environ.get("NASD_ANALYZE_BACKEND",
                                           "builtin"),
                    help="parser backend (default builtin; libclang "
                    "needs clang.cindex)")
    ap.add_argument("--baseline", default=None,
                    help="suppression file (default: "
                    "tools/analyze_baseline.json)")
    ap.add_argument("--no-baseline", action="store_true",
                    help="ignore the baseline (fixture/self-test mode)")
    ap.add_argument("--checks", default="A1,A2,A3,A4,A5,A6,A7,A8",
                    help="comma-separated subset of checks to run")
    ap.add_argument("--format", choices=("text", "json"), default="text")
    ap.add_argument("--list-checks", action="store_true")
    args = ap.parse_args(argv)

    if args.list_checks:
        for cid, slug in CHECKS.items():
            print(f"{cid}  {slug}")
        return 0

    root = Path(args.root) if args.root else \
        Path(__file__).resolve().parent.parent
    build_dir = Path(args.build_dir) if args.build_dir else root / "build"
    checks = {c.strip() for c in args.checks.split(",") if c.strip()}
    unknown = checks - set(CHECKS)
    if unknown:
        print(f"nasd-analyze: unknown checks: {sorted(unknown)}",
              file=sys.stderr)
        return 2

    if args.files:
        paths = [Path(f).resolve() for f in args.files]
    else:
        paths = discover_sources(root)
    if not paths:
        print("nasd-analyze: no input files", file=sys.stderr)
        return 2

    if args.backend == "libclang":
        cindex = load_cindex()
        if cindex is None:
            print(LIBCLANG_HINT, file=sys.stderr)
            return 2
        models = build_models_libclang(cindex, root, build_dir, paths)
    else:
        models = []
        for path in paths:
            rel = os.path.relpath(path, root)
            models.append(build_file_model(rel, Path(path).read_text()))

    findings = run_checks(models, checks)
    findings.sort(key=lambda f: (f.file, f.line, f.check))

    baseline_path = Path(args.baseline) if args.baseline else \
        root / "tools" / "analyze_baseline.json"
    suppressed = []
    baseline_errors = []
    if not args.no_baseline:
        entries, baseline_errors = load_baseline(baseline_path)
        kept = []
        used = set()
        for f in findings:
            if f.key in entries:
                suppressed.append(f)
                used.add(f.key)
            else:
                kept.append(f)
        findings = kept
        for key in sorted(set(entries) - used):
            print(f"nasd-analyze: note: unused baseline entry {key} "
                  "(stale? consider removing it)", file=sys.stderr)

    if args.format == "json":
        out = {
            "findings": [
                {
                    "check": f.check, "slug": CHECKS[f.check],
                    "file": f.file, "line": f.line, "symbol": f.symbol,
                    "key": f.key, "message": f.message, "hint": f.hint,
                }
                for f in findings
            ],
            "suppressed": len(suppressed),
            "files": len(models),
            "baseline_errors": baseline_errors,
        }
        print(json.dumps(out, indent=2))
    else:
        for f in findings:
            print(f"{f.file}:{f.line}: [{f.check}/{CHECKS[f.check]}] "
                  f"{f.message}\n    hint: {f.hint}\n    suppress-key: "
                  f"{f.key}")
        for e in baseline_errors:
            print(f"nasd-analyze: baseline error: {e}", file=sys.stderr)
        status = "clean" if not findings and not baseline_errors else \
            f"{len(findings)} finding(s)"
        print(f"nasd-analyze: {len(models)} file(s), {status}, "
              f"{len(suppressed)} baselined")

    if baseline_errors:
        return 2
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
