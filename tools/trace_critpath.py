#!/usr/bin/env python3
"""Offline critical-path analysis over an exported Chrome trace.

Reads the trace_event JSON written by a bench's ``--trace PATH`` option
and runs the same drive fan-out analysis as util::critpath::
analyzeDriveFanout(): a striped read fans out to several drives and
completes when the slowest branch does, so for every trace with a root
span of the given name this groups the child spans matching a prefix,
marks the branch that finished last as critical, and reports per drive
lane how often that lane was critical plus its mean slack (time behind
the critical branch) when it was not.

Usage:
    tools/trace_critpath.py fig9_trace.json \
        [--root pfs/read] [--child drive/] [--top N]

Exit status: 0 when at least one root op matched, 1 otherwise.
"""

import argparse
import json
import sys
from collections import defaultdict


def load_events(path):
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents", doc if isinstance(doc, list) else [])
    lanes = {}
    spans = []
    for ev in events:
        if not isinstance(ev, dict):
            continue
        if (ev.get("ph") == "M" and ev.get("name") == "thread_name"):
            lanes[ev.get("tid")] = ev.get("args", {}).get("name", "")
        elif ev.get("ph") == "X":
            spans.append(ev)
    return lanes, spans


def analyze(lanes, spans, root_name, child_prefix):
    """Mirror of util::critpath::analyzeDriveFanout.

    Spans are grouped by args.trace_id (each top-level client op mints
    its own trace), branches keep file order, and on an end-time tie
    the first branch is the critical one — identical tie-breaking to
    the in-process analyzer.
    """
    groups = defaultdict(lambda: {"has_root": False, "branches": []})
    for ev in spans:
        trace_id = ev.get("args", {}).get("trace_id", 0)
        if not trace_id:
            continue
        name = ev.get("name", "")
        if name == root_name:
            groups[trace_id]["has_root"] = True
        elif name.startswith(child_prefix):
            groups[trace_id]["branches"].append(ev)

    lane_acc = defaultdict(
        lambda: {"spans": 0, "critical": 0, "slack_us": 0.0, "dur_us": 0.0}
    )
    roots = 0
    for trace_id in sorted(groups):
        group = groups[trace_id]
        if not group["has_root"] or not group["branches"]:
            continue
        roots += 1
        ends = [ev["ts"] + ev["dur"] for ev in group["branches"]]
        max_end = max(ends)
        critical_taken = False
        for ev, end in zip(group["branches"], ends):
            acc = lane_acc[lanes.get(ev.get("tid"), f"tid{ev.get('tid')}")]
            acc["spans"] += 1
            acc["dur_us"] += ev["dur"]
            if not critical_taken and end == max_end:
                acc["critical"] += 1
                critical_taken = True
            else:
                acc["slack_us"] += max_end - end

    drives = []
    for lane, acc in lane_acc.items():
        non_critical = acc["spans"] - acc["critical"]
        drives.append({
            "lane": lane,
            "spans": acc["spans"],
            "critical": acc["critical"],
            "mean_slack_us":
                acc["slack_us"] / non_critical if non_critical else 0.0,
            "mean_dur_us": acc["dur_us"] / acc["spans"],
        })
    drives.sort(key=lambda d: (-d["critical"], d["lane"]))
    return roots, drives


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace JSON from --trace")
    parser.add_argument("--root", default="pfs/read",
                        help="root span name (default: pfs/read)")
    parser.add_argument("--child", default="drive/",
                        help="fan-out span name prefix (default: drive/)")
    parser.add_argument("--top", type=int, default=0,
                        help="only print the top N lanes (default: all)")
    args = parser.parse_args()

    try:
        lanes, spans = load_events(args.trace)
    except (OSError, json.JSONDecodeError) as e:
        print(f"{args.trace}: {e}")
        return 1

    roots, drives = analyze(lanes, spans, args.root, args.child)
    print(f"critical-path fan-out: root '{args.root}',"
          f" branches '{args.child}*'")
    print(f"  root ops analyzed: {roots}")
    if roots == 0:
        print("  no matching root spans — was the trace recorded with"
              " --trace, and do --root/--child match the span names?")
        return 1

    shown = drives[: args.top] if args.top > 0 else drives
    print(f"  {'lane':<12} {'spans':>6} {'critical':>9}"
          f" {'mean slack ms':>14} {'mean dur ms':>12}")
    for d in shown:
        print(f"  {d['lane']:<12} {d['spans']:>6} {d['critical']:>9}"
              f" {d['mean_slack_us'] / 1000.0:>14.3f}"
              f" {d['mean_dur_us'] / 1000.0:>12.3f}")
    if args.top > 0 and len(drives) > args.top:
        print(f"  ... {len(drives) - args.top} more lane(s)")
    print(f"  dominant drive chain: {drives[0]['lane']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
