#!/usr/bin/env bash
# Bit-determinism gate: run fig6, fig9, and the scaled fig9 --drives
# configuration twice each and require the two BENCH_*.json dumps
# (metrics + timeseries) and printed outputs to be byte-identical.
# Every bench baseline and seeded-fault test silently assumes the
# simulator replays the same event sequence for the same inputs; this
# is the check that notices when someone breaks that — e.g. by keying
# a container on pointers or reading a wall clock.
#
# The one sanctioned wall-clock quantity, the sim/events_per_sec gauge
# (scheduler throughput, see bench_util.h), is normalized out of the
# JSON before comparison; it is never printed to stdout.
#
# Benches that support --journal (fig9_mining --kill-drive) also dump
# their flight-recorder journal on each pass, and the two journals must
# be byte-identical — the journal's whole contract is sim-time stamps
# and counter-derived sequence numbers, nothing wall-clock.
#
# Usage: tools/check_determinism.sh [build-dir]
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
STATUS=0

run_twice() {
    local name="$1" journal="$2" bin="$BUILD_DIR/bench/$3"
    shift 3
    if [ ! -x "$bin" ]; then
        echo "missing bench binary $bin; build first"
        return 1
    fi
    local rc=0
    for pass in 1 2; do
        local journal_args=()
        if [ "$journal" = "journal" ]; then
            journal_args=(--journal "$WORK/${name}_$pass.flight.json")
        fi
        if ! "$bin" "$@" --json "$WORK/${name}_$pass.json" \
                "${journal_args[@]}" \
                > "$WORK/${name}_$pass.txt" 2>&1; then
            echo "$name: pass $pass exited non-zero"
            tail -5 "$WORK/${name}_$pass.txt"
            return 1
        fi
        # The dump paths appear in the printed output; normalize them
        # so only real divergence fails the stdout comparison.
        sed -i "s|$WORK/${name}_$pass.flight.json|JOURNAL|g" \
            "$WORK/${name}_$pass.txt"
        sed -i "s|$WORK/${name}_$pass.json|DUMP|g" "$WORK/${name}_$pass.txt"
        # Scheduler wall-clock throughput legitimately differs between
        # runs; everything else in the dump must not. Normalize to 0
        # (not a placeholder token) so the dump stays valid JSON for
        # the dashboard render below.
        sed -i 's|"sim/events_per_sec": [^,}]*|"sim/events_per_sec": 0|' \
            "$WORK/${name}_$pass.json"
    done
    if ! cmp -s "$WORK/${name}_1.json" "$WORK/${name}_2.json"; then
        echo "$name: BENCH json dumps differ between identical runs:"
        diff "$WORK/${name}_1.json" "$WORK/${name}_2.json" | head -20
        rc=1
    fi
    if [ "$journal" = "journal" ] && \
            ! cmp -s "$WORK/${name}_1.flight.json" \
                     "$WORK/${name}_2.flight.json"; then
        echo "$name: flight journals differ between identical runs:"
        diff "$WORK/${name}_1.flight.json" "$WORK/${name}_2.flight.json" \
            | head -20
        rc=1
    fi
    if ! cmp -s "$WORK/${name}_1.txt" "$WORK/${name}_2.txt"; then
        echo "$name: printed outputs differ between identical runs:"
        diff "$WORK/${name}_1.txt" "$WORK/${name}_2.txt" | head -20
        rc=1
    fi
    [ $rc -eq 0 ] && echo "$name: deterministic (json + stdout identical)"
    return $rc
}

run_twice fig6 nojournal fig6_bandwidth || STATUS=1
run_twice fig9 nojournal fig9_mining || STATUS=1
run_twice fig9_scale64 nojournal fig9_mining --drives 64 || STATUS=1
run_twice rebuild journal fig9_mining --kill-drive || STATUS=1

# The fleet dashboard must be a pure function of its input dump: two
# renders of the same BENCH json must produce byte-identical HTML, or
# the CI artifact stops being diffable across runs.
if [ -f "$WORK/fig9_scale64_1.json" ]; then
    for pass in 1 2; do
        if ! python3 "$ROOT/tools/fleet_dashboard.py" \
                "$WORK/fig9_scale64_1.json" \
                --out "$WORK/dashboard_$pass.html" >/dev/null; then
            echo "dashboard: render pass $pass failed"
            STATUS=1
        fi
    done
    if ! cmp -s "$WORK/dashboard_1.html" "$WORK/dashboard_2.html"; then
        echo "dashboard: HTML differs between identical renders"
        STATUS=1
    else
        echo "dashboard: deterministic (double render byte-identical)"
    fi
fi

exit $STATUS
