#!/usr/bin/env python3
"""Validate a bench metrics dump (BENCH_*.json) and compare headline
throughput gauges against a checked-in baseline.

Schema (written by bench::writeBenchJson):

    {"schema_version": 1,
     "bench": "<name>",
     "reference": "<paper figure/table>",
     "metrics": {"counters": {path: int, ...},
                 "gauges": {path: float, ...},
                 "histograms": {path: {count, mean, min, max,
                                       p50, p95, p99}, ...}},
     "timeseries": {"interval_ns": int, "start_ns": int,
                    "samples": int, "series": {name: [float, ...]}}}

The "timeseries" section is optional (present when the bench sampled a
sim::StatsPoller run); when present every series must carry one value
per sampling interval.

The "fleet_health" section is optional (written by fig9_mining
--kill-drive from the flight-recorder journal): {"phases": [{"name":
str, "events": {kind: count, ...}}, ...]}. A rebuild dump must carry
the four kill-drive phases in execution order (healthy, degraded,
rebuild, post_rebuild), and when the baseline carries a fleet_health
section too, the phase list must match and per-phase event counts are
gated with the same tolerance as headline gauges — the simulator is
deterministic, so a count drifting past tolerance means the
control-plane event flow changed, not noise.

Every dump must carry the ``sim/events_per_sec`` gauge (scheduler
throughput: simulated events executed per wall-clock second, written
by bench::writeBenchJson). It is the one wall-clock-derived number in
a dump, so it is validated for shape (positive, finite) but NEVER
compared against a baseline — machine speed is not a regression.
tools/check_determinism.sh normalizes it away before byte-diffing.

Baseline comparison covers every headline gauge present in the
baseline file (itself a BENCH_*.json snapshot): ``*_mbps`` throughput
points, ``*_instr`` instruction counts, and ``*_ms`` latencies. The
simulator is deterministic, so identical code produces identical
numbers; the tolerance absorbs intentional model recalibration without
letting a real regression through.

Usage:
    tools/check_bench_json.py BENCH_fig9.json \
        [--baseline bench/baselines/fig9.json] [--tolerance 0.25]

Exit status: 0 clean, 1 schema violation or baseline mismatch.
"""

import argparse
import json
import math
import sys

HISTOGRAM_KEYS = {"count", "mean", "min", "max", "p50", "p95", "p99"}
HEADLINE_SUFFIXES = ("_mbps", "_instr", "_ms")
EVENTS_PER_SEC_GAUGE = "sim/events_per_sec"


def fail(errors, message):
    errors.append(message)


def check_schema(doc, errors):
    if not isinstance(doc, dict):
        fail(errors, "top level is not a JSON object")
        return
    if doc.get("schema_version") != 1:
        fail(errors, f"schema_version is {doc.get('schema_version')!r},"
                     " expected 1")
    for key in ("bench", "reference"):
        if not isinstance(doc.get(key), str) or not doc.get(key):
            fail(errors, f"'{key}' missing or not a non-empty string")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        fail(errors, "'metrics' missing or not an object")
        return
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(metrics.get(section), dict):
            fail(errors, f"metrics.{section} missing or not an object")
            return
    for path, value in metrics["counters"].items():
        if not isinstance(value, int) or value < 0:
            fail(errors, f"counter '{path}' is not a non-negative int:"
                         f" {value!r}")
    for path, value in metrics["gauges"].items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            fail(errors, f"gauge '{path}' is not a number: {value!r}")
    eps = metrics["gauges"].get(EVENTS_PER_SEC_GAUGE)
    if eps is None:
        fail(errors, f"missing gauge '{EVENTS_PER_SEC_GAUGE}'"
                     " (scheduler throughput; written by writeBenchJson)")
    elif isinstance(eps, bool) or not isinstance(eps, (int, float)) \
            or not math.isfinite(eps) or eps <= 0:
        fail(errors, f"gauge '{EVENTS_PER_SEC_GAUGE}' must be a positive"
                     f" finite number, got {eps!r}")
    for path, summary in metrics["histograms"].items():
        if not isinstance(summary, dict):
            fail(errors, f"histogram '{path}' is not an object")
            continue
        missing = HISTOGRAM_KEYS - summary.keys()
        if missing:
            fail(errors, f"histogram '{path}' missing keys:"
                         f" {sorted(missing)}")
    if "timeseries" in doc:
        check_timeseries(doc["timeseries"], errors)
    if "fleet_health" in doc:
        check_fleet_health(doc, errors)


KILL_DRIVE_PHASES = ["healthy", "degraded", "rebuild", "post_rebuild"]


def fleet_phases(doc):
    """[(name, events-dict), ...] of a dump's fleet_health section."""
    return [(p.get("name"), p.get("events", {}))
            for p in doc.get("fleet_health", {}).get("phases", [])]


def check_fleet_health(doc, errors):
    fh = doc["fleet_health"]
    if not isinstance(fh, dict) or not isinstance(fh.get("phases"), list):
        fail(errors, "'fleet_health' is not {'phases': [...]}")
        return
    for i, phase in enumerate(fh["phases"]):
        if not isinstance(phase, dict) \
                or not isinstance(phase.get("name"), str):
            fail(errors, f"fleet_health.phases[{i}] missing 'name'")
            return
        events = phase.get("events")
        if not isinstance(events, dict):
            fail(errors, f"fleet_health phase '{phase['name']}'"
                         " missing 'events' object")
            continue
        for kind, count in events.items():
            if not isinstance(count, int) or count < 0 \
                    or isinstance(count, bool):
                fail(errors, f"fleet_health phase '{phase['name']}'"
                             f" event '{kind}' is not a non-negative"
                             f" int: {count!r}")
    if doc.get("bench") == "rebuild":
        names = [name for name, _ in fleet_phases(doc)]
        if names != KILL_DRIVE_PHASES:
            fail(errors, f"fleet_health phases are {names}, expected"
                         f" {KILL_DRIVE_PHASES} in execution order")


def check_fleet_baseline(doc, baseline, tolerance, errors):
    want = fleet_phases(baseline)
    if not want:
        return
    have = fleet_phases(doc)
    if [n for n, _ in have] != [n for n, _ in want]:
        fail(errors, "fleet_health phase list differs from baseline:"
                     f" {[n for n, _ in have]} vs"
                     f" {[n for n, _ in want]}")
        return
    got = dict(have)
    for name, events in want:
        for kind, expected in sorted(events.items()):
            actual = got[name].get(kind, 0)
            if expected == 0:
                if actual != 0:
                    fail(errors, f"fleet_health {name}/{kind}:"
                                 f" baseline 0, got {actual}")
                continue
            rel = abs(actual - expected) / abs(expected)
            if rel > tolerance:
                fail(errors,
                     f"fleet_health {name}/{kind}: {actual} vs baseline"
                     f" {expected} ({rel:+.1%} > ±{tolerance:.0%})")


def check_timeseries(ts, errors):
    if not isinstance(ts, dict):
        fail(errors, "'timeseries' is not an object")
        return
    interval = ts.get("interval_ns")
    if not isinstance(interval, int) or interval <= 0:
        fail(errors, f"timeseries.interval_ns is not a positive int:"
                     f" {interval!r}")
    if not isinstance(ts.get("start_ns"), int):
        fail(errors, f"timeseries.start_ns is not an int:"
                     f" {ts.get('start_ns')!r}")
    samples = ts.get("samples")
    if not isinstance(samples, int) or samples < 0:
        fail(errors, f"timeseries.samples is not a non-negative int:"
                     f" {samples!r}")
        return
    series = ts.get("series")
    if not isinstance(series, dict) or not series:
        fail(errors, "timeseries.series missing or empty")
        return
    for name, values in series.items():
        if not isinstance(values, list):
            fail(errors, f"timeseries series '{name}' is not a list")
            continue
        if len(values) != samples:
            fail(errors, f"timeseries series '{name}' has {len(values)}"
                         f" values, expected {samples}")
        for v in values:
            if not isinstance(v, (int, float)) or isinstance(v, bool):
                fail(errors, f"timeseries series '{name}' holds a"
                             f" non-number: {v!r}")
                break


def check_baseline(doc, baseline, tolerance, errors):
    gauges = doc.get("metrics", {}).get("gauges", {})
    expected = {
        path: value
        for path, value in baseline.get("metrics", {})
                                   .get("gauges", {}).items()
        if path.endswith(HEADLINE_SUFFIXES)
    }
    if not expected:
        fail(errors, "baseline has no headline gauges to compare"
                     f" (suffixes: {', '.join(HEADLINE_SUFFIXES)})")
        return
    for path, want in sorted(expected.items()):
        if path not in gauges:
            fail(errors, f"missing headline gauge '{path}'")
            continue
        got = gauges[path]
        if want == 0:
            if got != 0:
                fail(errors, f"'{path}': baseline 0, got {got}")
            continue
        rel = abs(got - want) / abs(want)
        if rel > tolerance:
            fail(errors,
                 f"'{path}': {got:.2f} vs baseline {want:.2f}"
                 f" ({rel:+.1%} > ±{tolerance:.0%})")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("dump", help="BENCH_*.json produced by a bench run")
    parser.add_argument("--baseline",
                        help="checked-in BENCH_*.json to compare against")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="max relative headline deviation"
                             " (default 0.25)")
    args = parser.parse_args()

    errors = []
    try:
        with open(args.dump) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"{args.dump}: {e}")
        return 1

    check_schema(doc, errors)
    if args.baseline and not errors:
        try:
            with open(args.baseline) as f:
                baseline = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"{args.baseline}: {e}")
            return 1
        check_baseline(doc, baseline, args.tolerance, errors)
        if "fleet_health" in doc and "fleet_health" in baseline:
            check_fleet_baseline(doc, baseline, args.tolerance, errors)

    for e in errors:
        print(f"{args.dump}: {e}")
    if errors:
        print(f"\n{len(errors)} problem(s)")
        return 1
    if args.baseline:
        print(f"{args.dump}: schema valid vs {args.baseline},"
              " headline gauges within tolerance")
    else:
        print(f"{args.dump}: schema valid")
    return 0


if __name__ == "__main__":
    sys.exit(main())
