#!/usr/bin/env python3
"""Validate a bench metrics dump (BENCH_*.json) and compare headline
throughput gauges against a checked-in baseline.

Schema (written by bench::writeBenchJson):

    {"schema_version": 1,
     "bench": "<name>",
     "reference": "<paper figure/table>",
     "metrics": {"counters": {path: int, ...},
                 "gauges": {path: float, ...},
                 "histograms": {path: {count, mean, min, max,
                                       p50, p95, p99}, ...},
                 "latencies": {path: {count, sum, min, max, mean,
                                      p50, p95, p99,
                                      "buckets": [[lower, n], ...]},
                               ...}},
     "timeseries": {"interval_ns": int, "start_ns": int,
                    "samples": int, "series": {name: [float, ...]}},
     "fleet_rollup": {"score_threshold": float, "min_instances": int,
                      "ops": {group: {"merged": <latency histogram>,
                                      "median_p99_ns": float,
                                      "mad_ns": float,
                                      "instances": {name: {...}},
                                      "stragglers": [name, ...]}}}}

The "timeseries" section is optional (present when the bench sampled a
sim::StatsPoller run); when present every series must carry one value
per sampling interval.

The "metrics.latencies" section (util::LogHistogram instruments) is
optional for older dumps; when present every histogram's bucket lower
bounds must be strictly increasing and the bucket counts must sum to
the histogram's count — a violation means merge() or restore() broke.

The "fleet_rollup" section (util::FleetRollup; merged per-op latency
across instrument siblings + straggler verdicts) is REQUIRED: every
writeBenchJson dump carries one. Per op group the merged histogram is
validated like a latency instrument, its count must equal the sum of
the per-instance counts (exact-merge invariant), and the "stragglers"
list must be exactly the instances flagged "straggler": true. The
optional "fleet_rollups" section (fig9_mining --drives) maps drive
count -> one rollup per sweep point, each validated the same way.

The "fleet_health" section is optional (written by fig9_mining
--kill-drive from the flight-recorder journal): {"phases": [{"name":
str, "events": {kind: count, ...}}, ...]}. A rebuild dump must carry
the four kill-drive phases in execution order (healthy, degraded,
rebuild, post_rebuild), and when the baseline carries a fleet_health
section too, the phase list must match and per-phase event counts are
gated with the same tolerance as headline gauges — the simulator is
deterministic, so a count drifting past tolerance means the
control-plane event flow changed, not noise.

Every dump must carry the ``sim/events_per_sec`` gauge (scheduler
throughput: simulated events executed per wall-clock second, written
by bench::writeBenchJson). It is the one wall-clock-derived number in
a dump, so it is validated for shape (positive, finite) but NEVER
compared against a baseline — machine speed is not a regression.
tools/check_determinism.sh normalizes it away before byte-diffing.

Baseline comparison covers every headline gauge present in the
baseline file (itself a BENCH_*.json snapshot): ``*_mbps`` throughput
points, ``*_instr`` instruction counts, and ``*_ms`` latencies. The
simulator is deterministic, so identical code produces identical
numbers; the tolerance absorbs intentional model recalibration without
letting a real regression through.

Usage:
    tools/check_bench_json.py BENCH_fig9.json \
        [--baseline bench/baselines/fig9.json] [--tolerance 0.25]

Exit status: 0 clean, 1 schema violation or baseline mismatch.
"""

import argparse
import json
import math
import sys

HISTOGRAM_KEYS = {"count", "mean", "min", "max", "p50", "p95", "p99"}
HEADLINE_SUFFIXES = ("_mbps", "_instr", "_ms")
EVENTS_PER_SEC_GAUGE = "sim/events_per_sec"


def fail(errors, message):
    errors.append(message)


def check_schema(doc, errors):
    if not isinstance(doc, dict):
        fail(errors, "top level is not a JSON object")
        return
    if doc.get("schema_version") != 1:
        fail(errors, f"schema_version is {doc.get('schema_version')!r},"
                     " expected 1")
    for key in ("bench", "reference"):
        if not isinstance(doc.get(key), str) or not doc.get(key):
            fail(errors, f"'{key}' missing or not a non-empty string")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        fail(errors, "'metrics' missing or not an object")
        return
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(metrics.get(section), dict):
            fail(errors, f"metrics.{section} missing or not an object")
            return
    for path, value in metrics["counters"].items():
        if not isinstance(value, int) or value < 0:
            fail(errors, f"counter '{path}' is not a non-negative int:"
                         f" {value!r}")
    for path, value in metrics["gauges"].items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            fail(errors, f"gauge '{path}' is not a number: {value!r}")
    eps = metrics["gauges"].get(EVENTS_PER_SEC_GAUGE)
    if eps is None:
        fail(errors, f"missing gauge '{EVENTS_PER_SEC_GAUGE}'"
                     " (scheduler throughput; written by writeBenchJson)")
    elif isinstance(eps, bool) or not isinstance(eps, (int, float)) \
            or not math.isfinite(eps) or eps <= 0:
        fail(errors, f"gauge '{EVENTS_PER_SEC_GAUGE}' must be a positive"
                     f" finite number, got {eps!r}")
    for path, summary in metrics["histograms"].items():
        if not isinstance(summary, dict):
            fail(errors, f"histogram '{path}' is not an object")
            continue
        missing = HISTOGRAM_KEYS - summary.keys()
        if missing:
            fail(errors, f"histogram '{path}' missing keys:"
                         f" {sorted(missing)}")
    for path, summary in metrics.get("latencies", {}).items():
        check_latency_histogram(summary, f"latency '{path}'", errors)
    if "timeseries" in doc:
        check_timeseries(doc["timeseries"], errors)
    if "fleet_health" in doc:
        check_fleet_health(doc, errors)
    if "fleet_rollup" not in doc:
        fail(errors, "missing 'fleet_rollup' section (every"
                     " writeBenchJson dump carries one)")
    else:
        check_fleet_rollup(doc["fleet_rollup"], "fleet_rollup", errors)
    rollups = doc.get("fleet_rollups")
    if rollups is not None:
        if not isinstance(rollups, dict):
            fail(errors, "'fleet_rollups' is not an object")
        else:
            for count, rollup in rollups.items():
                if not count.isdigit() or int(count) <= 0:
                    fail(errors, f"fleet_rollups key '{count}' is not a"
                                 " positive drive count")
                check_fleet_rollup(rollup, f"fleet_rollups[{count}]",
                                   errors)


LATENCY_KEYS = {"count", "sum", "min", "max", "mean",
                "p50", "p95", "p99", "buckets"}


def check_latency_histogram(summary, where, errors):
    """Validate one LogHistogram JSON object: required keys, strictly
    increasing bucket lower bounds, bucket counts summing to count."""
    if not isinstance(summary, dict):
        fail(errors, f"{where} is not an object")
        return
    missing = LATENCY_KEYS - summary.keys()
    if missing:
        fail(errors, f"{where} missing keys: {sorted(missing)}")
        return
    for key in ("count", "sum", "min", "max"):
        v = summary[key]
        if not isinstance(v, int) or isinstance(v, bool) or v < 0:
            fail(errors, f"{where} '{key}' is not a non-negative int:"
                         f" {v!r}")
            return
    buckets = summary["buckets"]
    if not isinstance(buckets, list):
        fail(errors, f"{where} 'buckets' is not a list")
        return
    total = 0
    prev_lower = -1
    for i, bucket in enumerate(buckets):
        if (not isinstance(bucket, list) or len(bucket) != 2
                or not all(isinstance(x, int) and not isinstance(x, bool)
                           and x >= 0 for x in bucket)):
            fail(errors, f"{where} buckets[{i}] is not a"
                         f" [lower, count] pair of non-negative ints:"
                         f" {bucket!r}")
            return
        lower, n = bucket
        if lower <= prev_lower:
            fail(errors, f"{where} bucket lower bounds are not strictly"
                         f" increasing at index {i}: {lower} after"
                         f" {prev_lower}")
            return
        if n == 0:
            fail(errors, f"{where} buckets[{i}] has a zero count"
                         " (empty buckets are omitted on export)")
        prev_lower = lower
        total += n
    if total != summary["count"]:
        fail(errors, f"{where} bucket counts sum to {total}, expected"
                     f" count {summary['count']}")


INSTANCE_KEYS = {"count", "p50_ns", "p99_ns", "score", "straggler"}


def check_fleet_rollup(rollup, where, errors):
    """Validate one util::FleetRollup JSON object, including the
    exact-merge invariant (merged count == sum of instance counts) and
    straggler-list consistency with the per-instance verdicts."""
    if not isinstance(rollup, dict):
        fail(errors, f"{where} is not an object")
        return
    for key in ("score_threshold", "min_instances"):
        v = rollup.get(key)
        if isinstance(v, bool) or not isinstance(v, (int, float)) \
                or v <= 0:
            fail(errors, f"{where} '{key}' is not a positive number:"
                         f" {v!r}")
    ops = rollup.get("ops")
    if not isinstance(ops, dict):
        fail(errors, f"{where} 'ops' missing or not an object")
        return
    for group, op in ops.items():
        opw = f"{where} op '{group}'"
        if not isinstance(op, dict):
            fail(errors, f"{opw} is not an object")
            continue
        check_latency_histogram(op.get("merged"), f"{opw} merged", errors)
        for key in ("median_p99_ns", "mad_ns"):
            v = op.get(key)
            if isinstance(v, bool) or not isinstance(v, (int, float)) \
                    or v < 0:
                fail(errors, f"{opw} '{key}' is not a non-negative"
                             f" number: {v!r}")
        instances = op.get("instances")
        if not isinstance(instances, dict) or not instances:
            fail(errors, f"{opw} 'instances' missing or empty")
            continue
        flagged = []
        total = 0
        for name, inst in sorted(instances.items()):
            instw = f"{opw} instance '{name}'"
            if not isinstance(inst, dict):
                fail(errors, f"{instw} is not an object")
                continue
            missing = INSTANCE_KEYS - inst.keys()
            if missing:
                fail(errors, f"{instw} missing keys: {sorted(missing)}")
                continue
            if not isinstance(inst["count"], int) or inst["count"] < 0:
                fail(errors, f"{instw} 'count' is not a non-negative"
                             f" int: {inst['count']!r}")
                continue
            if not isinstance(inst["straggler"], bool):
                fail(errors, f"{instw} 'straggler' is not a bool:"
                             f" {inst['straggler']!r}")
                continue
            total += inst["count"]
            if inst["straggler"]:
                flagged.append(name)
        merged = op.get("merged")
        if isinstance(merged, dict) \
                and isinstance(merged.get("count"), int) \
                and merged["count"] != total:
            fail(errors, f"{opw} merged count {merged['count']} !="
                         f" sum of instance counts {total}"
                         " (exact-merge invariant)")
        stragglers = op.get("stragglers")
        if not isinstance(stragglers, list):
            fail(errors, f"{opw} 'stragglers' is not a list")
        elif stragglers != flagged:
            fail(errors, f"{opw} straggler list {stragglers} does not"
                         f" match flagged instances {flagged}")


KILL_DRIVE_PHASES = ["healthy", "degraded", "rebuild", "post_rebuild"]


def fleet_phases(doc):
    """[(name, events-dict), ...] of a dump's fleet_health section."""
    return [(p.get("name"), p.get("events", {}))
            for p in doc.get("fleet_health", {}).get("phases", [])]


def check_fleet_health(doc, errors):
    fh = doc["fleet_health"]
    if not isinstance(fh, dict) or not isinstance(fh.get("phases"), list):
        fail(errors, "'fleet_health' is not {'phases': [...]}")
        return
    for i, phase in enumerate(fh["phases"]):
        if not isinstance(phase, dict) \
                or not isinstance(phase.get("name"), str):
            fail(errors, f"fleet_health.phases[{i}] missing 'name'")
            return
        events = phase.get("events")
        if not isinstance(events, dict):
            fail(errors, f"fleet_health phase '{phase['name']}'"
                         " missing 'events' object")
            continue
        for kind, count in events.items():
            if not isinstance(count, int) or count < 0 \
                    or isinstance(count, bool):
                fail(errors, f"fleet_health phase '{phase['name']}'"
                             f" event '{kind}' is not a non-negative"
                             f" int: {count!r}")
    if doc.get("bench") == "rebuild":
        names = [name for name, _ in fleet_phases(doc)]
        if names != KILL_DRIVE_PHASES:
            fail(errors, f"fleet_health phases are {names}, expected"
                         f" {KILL_DRIVE_PHASES} in execution order")


def check_fleet_baseline(doc, baseline, tolerance, errors):
    want = fleet_phases(baseline)
    if not want:
        return
    have = fleet_phases(doc)
    if [n for n, _ in have] != [n for n, _ in want]:
        fail(errors, "fleet_health phase list differs from baseline:"
                     f" {[n for n, _ in have]} vs"
                     f" {[n for n, _ in want]}")
        return
    got = dict(have)
    for name, events in want:
        for kind, expected in sorted(events.items()):
            actual = got[name].get(kind, 0)
            if expected == 0:
                if actual != 0:
                    fail(errors, f"fleet_health {name}/{kind}:"
                                 f" baseline 0, got {actual}")
                continue
            rel = abs(actual - expected) / abs(expected)
            if rel > tolerance:
                fail(errors,
                     f"fleet_health {name}/{kind}: {actual} vs baseline"
                     f" {expected} ({rel:+.1%} > ±{tolerance:.0%})")


def check_timeseries(ts, errors):
    if not isinstance(ts, dict):
        fail(errors, "'timeseries' is not an object")
        return
    interval = ts.get("interval_ns")
    if not isinstance(interval, int) or interval <= 0:
        fail(errors, f"timeseries.interval_ns is not a positive int:"
                     f" {interval!r}")
    if not isinstance(ts.get("start_ns"), int):
        fail(errors, f"timeseries.start_ns is not an int:"
                     f" {ts.get('start_ns')!r}")
    samples = ts.get("samples")
    if not isinstance(samples, int) or samples < 0:
        fail(errors, f"timeseries.samples is not a non-negative int:"
                     f" {samples!r}")
        return
    series = ts.get("series")
    if not isinstance(series, dict) or not series:
        fail(errors, "timeseries.series missing or empty")
        return
    for name, values in series.items():
        if not isinstance(values, list):
            fail(errors, f"timeseries series '{name}' is not a list")
            continue
        if len(values) != samples:
            fail(errors, f"timeseries series '{name}' has {len(values)}"
                         f" values, expected {samples}")
        for v in values:
            if not isinstance(v, (int, float)) or isinstance(v, bool):
                fail(errors, f"timeseries series '{name}' holds a"
                             f" non-number: {v!r}")
                break


def check_baseline(doc, baseline, tolerance, errors):
    gauges = doc.get("metrics", {}).get("gauges", {})
    expected = {
        path: value
        for path, value in baseline.get("metrics", {})
                                   .get("gauges", {}).items()
        if path.endswith(HEADLINE_SUFFIXES)
    }
    if not expected:
        fail(errors, "baseline has no headline gauges to compare"
                     f" (suffixes: {', '.join(HEADLINE_SUFFIXES)})")
        return
    for path, want in sorted(expected.items()):
        if path not in gauges:
            fail(errors, f"missing headline gauge '{path}'")
            continue
        got = gauges[path]
        if want == 0:
            if got != 0:
                fail(errors, f"'{path}': baseline 0, got {got}")
            continue
        rel = abs(got - want) / abs(want)
        if rel > tolerance:
            fail(errors,
                 f"'{path}': {got:.2f} vs baseline {want:.2f}"
                 f" ({rel:+.1%} > ±{tolerance:.0%})")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("dump", help="BENCH_*.json produced by a bench run")
    parser.add_argument("--baseline",
                        help="checked-in BENCH_*.json to compare against")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="max relative headline deviation"
                             " (default 0.25)")
    args = parser.parse_args()

    errors = []
    try:
        with open(args.dump) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"{args.dump}: {e}")
        return 1

    check_schema(doc, errors)
    if args.baseline and not errors:
        try:
            with open(args.baseline) as f:
                baseline = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"{args.baseline}: {e}")
            return 1
        check_baseline(doc, baseline, args.tolerance, errors)
        if "fleet_health" in doc and "fleet_health" in baseline:
            check_fleet_baseline(doc, baseline, args.tolerance, errors)

    for e in errors:
        print(f"{args.dump}: {e}")
    if errors:
        print(f"\n{len(errors)} problem(s)")
        return 1
    if args.baseline:
        print(f"{args.dump}: schema valid vs {args.baseline},"
              " headline gauges within tolerance")
    else:
        print(f"{args.dump}: schema valid")
    return 0


if __name__ == "__main__":
    sys.exit(main())
