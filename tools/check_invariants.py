#!/usr/bin/env python3
"""Project-specific invariant checker for the NASD tree.

Greps non-test sources for patterns the compiler cannot reject but
that violate project invariants:

  1. Naked ``x.value()`` with no visible ``x.ok()`` / truthiness guard in
     the preceding lines of the same scope. ``Result::value()`` panics on
     an error Result, so an unguarded call is either a latent crash or a
     missing status propagation.
  2. ``schedule`` / ``scheduleIn`` / ``scheduleCancelable`` /
     ``scheduleCancelableIn`` lambdas capturing by reference. The
     callback outlives the scheduling scope by construction (it runs when
     the event fires), so reference captures of locals are use-after-free
     bait. Coroutine handles and similar small values must be captured by
     value.
  3. Headers without an include guard.
  4. Loose ``util::Counter`` value members outside src/util. Modules
     must register instruments in the MetricsRegistry and hold
     ``util::Counter &`` references, so every counter shows up in
     BENCH_*.json dumps; an owned Counter member is invisible to the
     registry.
  5. ``fprintf(stderr, ...)`` anywhere in src/ except util/logging.cc.
     Diagnostics must go through NASD_LOG so NASD_LOG_LEVEL filtering
     and the log format apply uniformly.

Two former regex checks were promoted to token/AST level in
``tools/nasd_analyze.py`` and removed here: deadline-free drive RPCs
(now check A5, immune to comments/strings and wrap-friendly) and raw
Semaphore acquire/release outside src/sim (now check A4, which also
catches ``->acquire(`` through smart pointers and manual releases).

Usage: tools/check_invariants.py [repo-root]
Exit status is the number of violations (0 == clean).
"""

import re
import sys
from pathlib import Path

# Hard cap on how many lines above a .value() call we search for its
# guard; the scan normally stops earlier, at the enclosing function's
# boundary (a column-0 '}' per project brace style).
GUARD_WINDOW = 400

SOURCE_DIRS = ("src", "bench", "examples")
HEADER_DIRS = ("src", "bench")

# Plain-identifier receivers only: `x.value()`. Member chains like
# `node->counter.value()` are accessors on other types (util::Counter),
# not Result statuses.
VALUE_CALL = re.compile(r"(?<![\w.>])(\w+(?:\[\w+\])?)(?:\s*)\.value\(\)")
REF_CAPTURE_SCHEDULE = re.compile(
    r"\bschedule(?:In|Cancelable|CancelableIn)?\s*\([^;]*?\[\s*&[\]\w]",
    re.DOTALL,
)

def fail(violations, path, line_no, message):
    violations.append(f"{path}:{line_no}: {message}")


def guard_patterns(var):
    """Regexes that count as an ok-check for variable `var`."""
    v = re.escape(var)
    return [
        re.compile(rf"\b{v}\s*\.\s*ok\s*\(\)"),
        re.compile(rf"\b{v}\s*\.\s*has_value\s*\(\)"),
        re.compile(rf"if\s*\(\s*!?\s*{v}\s*[\)&|]"),  # if (x) / if (!x)
        re.compile(rf"NASD_ASSERT\s*\(\s*!?\s*{v}\b"),
        re.compile(rf"ASSERT_TRUE\s*\(\s*{v}\b"),
        re.compile(rf"while\s*\(\s*!?\s*{v}\s*[\)&|]"),
    ]


# Registry instruments expose .value() too; a name declared as a
# `Counter &` / `Gauge &` reference in this file is not a Result.
INSTRUMENT_REF_DECL = re.compile(
    r"\b(?:util::)?(?:Counter|Gauge)\s*&\s*(\w+)"
)


def check_value_calls(path, lines, violations):
    instrument_names = set(
        INSTRUMENT_REF_DECL.findall("\n".join(lines))
    )
    for i, line in enumerate(lines):
        stripped = line.split("//")[0]
        for match in VALUE_CALL.finditer(stripped):
            var = match.group(1)
            base = var.split("[")[0]
            if base in instrument_names:
                continue
            guards = guard_patterns(base) + guard_patterns(var)
            # Guard on the same line (ternary / assert) counts; else
            # scan back to the top of the enclosing function (a
            # column-0 '}' closes the previous one).
            window = [stripped[: match.start()]]
            for j in range(i - 1, max(-1, i - GUARD_WINDOW - 1), -1):
                prev = lines[j]
                if prev.startswith("}"):
                    break
                window.append(prev.split("//")[0])
            if not any(g.search(text) for text in window for g in guards):
                fail(
                    violations, path, i + 1,
                    f"naked '{var}.value()' without a preceding "
                    f"'{base}.ok()' check in the enclosing function",
                )


def check_schedule_captures(path, text, lines, violations):
    for match in REF_CAPTURE_SCHEDULE.finditer(text):
        line_no = text.count("\n", 0, match.start()) + 1
        fail(
            violations, path, line_no,
            "schedule/scheduleIn lambda captures by reference; the "
            "callback outlives this scope — capture by value",
        )
    del lines  # line-based context unused; kept for symmetric signature


# A Counter held by value (not `util::Counter &ref`) as a class member.
COUNTER_VALUE_MEMBER = re.compile(r"\butil::Counter\s+(?!&)\w+\s*[;={]")
STDERR_PRINT = re.compile(r"\bfprintf\s*\(\s*stderr\b")


def check_counter_members(path, lines, violations):
    if str(path).startswith("src/util/"):
        return  # the registry itself owns its Counters
    for i, line in enumerate(lines):
        if COUNTER_VALUE_MEMBER.search(line.split("//")[0]):
            fail(
                violations, path, i + 1,
                "loose util::Counter value member; register it in the "
                "MetricsRegistry and hold a util::Counter & instead so "
                "it appears in BENCH_*.json dumps",
            )


def check_stderr_prints(path, lines, violations):
    if not str(path).startswith("src/"):
        return
    if str(path) == "src/util/logging.cc":
        return  # the log sink itself
    for i, line in enumerate(lines):
        if STDERR_PRINT.search(line.split("//")[0]):
            fail(
                violations, path, i + 1,
                "raw fprintf(stderr, ...); use NASD_LOG so "
                "NASD_LOG_LEVEL filtering applies",
            )


def check_include_guard(path, text, violations):
    if "#pragma once" in text:
        return
    guard = re.search(r"#ifndef\s+(\w+)\s*\n\s*#define\s+(\w+)", text)
    if not guard or guard.group(1) != guard.group(2):
        fail(violations, path, 1, "header missing an include guard")


def main():
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        __file__
    ).resolve().parent.parent
    violations = []

    for top in SOURCE_DIRS:
        for path in sorted((root / top).rglob("*.cc")):
            rel = path.relative_to(root)
            lines = path.read_text().splitlines()
            check_value_calls(rel, lines, violations)
            check_schedule_captures(
                rel, "\n".join(lines), lines, violations
            )
            check_counter_members(rel, lines, violations)
            check_stderr_prints(rel, lines, violations)

    for top in HEADER_DIRS:
        for path in sorted((root / top).rglob("*.h")):
            rel = path.relative_to(root)
            text = path.read_text()
            lines = text.splitlines()
            check_value_calls(rel, lines, violations)
            check_schedule_captures(rel, text, lines, violations)
            check_include_guard(rel, text, violations)
            check_counter_members(rel, lines, violations)
            check_stderr_prints(rel, lines, violations)

    for v in violations:
        print(v)
    if violations:
        print(f"\n{len(violations)} invariant violation(s)")
    else:
        print("invariants clean")
    return min(len(violations), 125)


if __name__ == "__main__":
    sys.exit(main())
